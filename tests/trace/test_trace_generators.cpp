/**
 * @file
 * Statistical property tests for every trace generator, under fixed
 * seeds so the assertions are exact-repeatable rather than flaky:
 * Poisson inter-arrival moments, MMPP burstiness above the Poisson
 * baseline, sine period/amplitude recovery, flash-crowd peak
 * placement, batch correlation — plus spec parse/print round-trips
 * and the reproducibility contract (same spec = same stream).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "trace/trace_generator.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

std::vector<TraceEvent>
drain(const std::string &spec)
{
    auto src = makeTraceGenerator(TraceGenSpec::parse(spec));
    std::vector<TraceEvent> out;
    TraceEvent ev;
    while (src->next(ev))
        out.push_back(ev);
    return out;
}

std::vector<Seconds>
gaps(const std::vector<TraceEvent> &evs)
{
    std::vector<Seconds> out;
    for (std::size_t i = 1; i < evs.size(); ++i)
        out.push_back(evs[i].arrival - evs[i - 1].arrival);
    return out;
}

double
mean(const std::vector<double> &xs)
{
    double s = 0.0;
    for (const double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Coefficient of variation: 1 for exponential inter-arrivals. */
double
cv(const std::vector<double> &xs)
{
    const double m = mean(xs);
    double ss = 0.0;
    for (const double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size())) / m;
}

TEST(TraceGenerators, EveryKindIsWellFormed)
{
    for (const char *spec :
         {"poisson,rate=200,horizon=0.5,seed=3",
          "mmpp,rate=100,horizon=0.5,seed=3",
          "sine,rate=300,horizon=0.5,seed=3",
          "flash,rate=80,horizon=1,seed=3",
          "batch,rate=50,horizon=0.5,max-cores=4,seed=3"}) {
        const auto evs = drain(spec);
        ASSERT_FALSE(evs.empty()) << spec;
        Seconds last = 0.0;
        for (const TraceEvent &ev : evs) {
            EXPECT_GE(ev.arrival, last) << spec;
            EXPECT_GT(ev.duration, 0.0) << spec;
            EXPECT_GE(ev.cores, 1) << spec;
            last = ev.arrival;
        }
    }
}

TEST(TraceGenerators, SameSpecSameStream)
{
    const std::string spec = "mmpp,rate=150,horizon=1,seed=77";
    const auto a = drain(spec);
    const auto b = drain(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].app, b[i].app);
        EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
        EXPECT_EQ(a[i].cores, b[i].cores);
    }
    // ...and a different seed gives a different stream.
    const auto c = drain("mmpp,rate=150,horizon=1,seed=78");
    ASSERT_FALSE(c.empty());
    EXPECT_NE(a.front().arrival, c.front().arrival);
}

TEST(TraceGenerators, PoissonMomentsMatchTheRate)
{
    const auto evs = drain("poisson,rate=1000,horizon=2,seed=42");
    // ~2000 arrivals expected; +-10% is ~4.5 sigma.
    EXPECT_GT(evs.size(), 1800u);
    EXPECT_LT(evs.size(), 2200u);
    const auto g = gaps(evs);
    EXPECT_NEAR(mean(g), 1e-3, 1e-4);
    // Exponential gaps: CV == 1.
    EXPECT_GT(cv(g), 0.85);
    EXPECT_LT(cv(g), 1.15);
    // Durations are exponential with the configured mean.
    std::vector<double> durs;
    for (const TraceEvent &ev : evs)
        durs.push_back(ev.duration);
    EXPECT_NEAR(mean(durs), 0.02, 0.002);
}

TEST(TraceGenerators, MmppIsBurstierThanPoisson)
{
    const auto evs = drain(
        "mmpp,rate=100,burst-factor=10,mean-burst=0.02,"
        "mean-quiet=0.1,horizon=5,seed=7");
    // Mixing two exponential rates lifts the CV well above 1.
    EXPECT_GT(cv(gaps(evs)), 1.3);
    // Overall rate sits between quiet (100) and burst (1000).
    const double jobsPerSec =
        static_cast<double>(evs.size()) / 5.0;
    EXPECT_GT(jobsPerSec, 100.0);
    EXPECT_LT(jobsPerSec, 1000.0);
}

TEST(TraceGenerators, SineRecoversAmplitudeAndPeriod)
{
    const double amp = 0.8, period = 0.25;
    const auto evs = drain(
        "sine,rate=2000,amplitude=0.8,period=0.25,horizon=5,seed=9");
    ASSERT_GT(evs.size(), 5000u);
    // For intensity r*(1 + a*sin(2*pi*t/T)), the arrival-weighted
    // mean of sin(2*pi*t/T) over whole cycles is a/2 — a one-term
    // Fourier projection recovers the amplitude.
    double s = 0.0, cmax = 0.0;
    for (const TraceEvent &ev : evs)
        s += std::sin(2.0 * M_PI * ev.arrival / period);
    const double ampEst =
        2.0 * s / static_cast<double>(evs.size());
    EXPECT_NEAR(ampEst, amp, 0.15);
    // Projecting at half the true frequency finds no signal, which
    // pins the period rather than just "some modulation exists".
    for (const TraceEvent &ev : evs)
        cmax += std::sin(2.0 * M_PI * ev.arrival / (2.0 * period));
    EXPECT_LT(std::abs(2.0 * cmax / static_cast<double>(evs.size())),
              0.15);
}

TEST(TraceGenerators, FlashCrowdPeaksInsideItsWindow)
{
    const auto evs = drain(
        "flash,rate=80,flash-start=0.4,flash-duration=0.05,"
        "flash-factor=25,horizon=1,seed=11");
    // Bin arrivals at the window width: the flash bin must dominate.
    const double width = 0.05;
    std::vector<int> bins(20, 0);
    for (const TraceEvent &ev : evs) {
        const auto b = std::min<std::size_t>(
            static_cast<std::size_t>(ev.arrival / width), 19);
        ++bins[b];
    }
    const auto peak =
        std::max_element(bins.begin(), bins.end()) - bins.begin();
    EXPECT_EQ(peak, 8); // [0.4, 0.45)
    // Expected ~100 arrivals in the flash bin vs ~4 per quiet bin.
    EXPECT_GT(bins[8], 50);
}

TEST(TraceGenerators, BatchesCorrelateInstantAndApp)
{
    const auto evs = drain(
        "batch,rate=100,batch-mean=3,max-cores=4,horizon=5,seed=13");
    ASSERT_GT(evs.size(), 500u);
    std::size_t batches = 0, i = 0;
    bool sawMultiJobBatch = false, sawMixedCores = false;
    while (i < evs.size()) {
        std::size_t j = i;
        std::set<int> coresSeen;
        while (j < evs.size() &&
               evs[j].arrival == evs[i].arrival) {
            // Batch members share the instant *and* the app.
            EXPECT_EQ(evs[j].app, evs[i].app);
            EXPECT_LE(evs[j].cores, 4);
            coresSeen.insert(evs[j].cores);
            ++j;
        }
        sawMultiJobBatch |= (j - i) > 1;
        sawMixedCores |= coresSeen.size() > 1;
        ++batches;
        i = j;
    }
    EXPECT_TRUE(sawMultiJobBatch);
    EXPECT_TRUE(sawMixedCores);
    // Mean batch size ~ batchMean (uniform on [1, 2*mean-1]).
    const double meanSize = static_cast<double>(evs.size()) /
        static_cast<double>(batches);
    EXPECT_NEAR(meanSize, 3.0, 0.5);
}

TEST(TraceGenerators, EventCapAndHorizonBothTerminate)
{
    EXPECT_EQ(
        drain("poisson,rate=1000,horizon=100,events=250,seed=1")
            .size(),
        250u);
    for (const TraceEvent &ev :
         drain("poisson,rate=500,horizon=0.25,seed=1"))
        EXPECT_LT(ev.arrival, 0.25);
}

TEST(TraceGenerators, SpecRoundTripsThroughToString)
{
    for (const char *text :
         {"poisson,rate=500,horizon=0.2,seed=7",
          "mmpp,rate=100,burst-factor=10,mean-burst=0.02,"
          "mean-quiet=0.08,seed=5",
          "sine,rate=300,amplitude=0.9,period=0.05,seed=2",
          "flash,rate=80,flash-start=0.04,flash-duration=0.02,"
          "flash-factor=25,seed=6",
          "batch,rate=60,batch-mean=4,max-cores=8,"
          "apps=swim+applu,events=10,seed=8"}) {
        const TraceGenSpec spec = TraceGenSpec::parse(text);
        const TraceGenSpec again =
            TraceGenSpec::parse(spec.toString());
        EXPECT_EQ(spec.toString(), again.toString()) << text;
        // The canonical string regenerates the identical stream.
        const auto a = drain(text);
        const auto b = drain(spec.toString());
        ASSERT_EQ(a.size(), b.size()) << text;
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival) << text;
    }
}

TEST(TraceGenerators, RejectsBadSpecs)
{
    EXPECT_THROW(TraceGenSpec::parse(""), FatalError);
    EXPECT_THROW(TraceGenSpec::parse("warp,rate=1"), FatalError);
    EXPECT_THROW(TraceGenSpec::parse("poisson,rate=0"), FatalError);
    EXPECT_THROW(TraceGenSpec::parse("poisson,rate=-5"), FatalError);
    EXPECT_THROW(TraceGenSpec::parse("poisson,horizon=0"),
                 FatalError);
    EXPECT_THROW(TraceGenSpec::parse("poisson,horizon=inf"),
                 FatalError);
    EXPECT_THROW(TraceGenSpec::parse("poisson,mean-duration=0"),
                 FatalError);
    EXPECT_THROW(TraceGenSpec::parse("poisson,max-cores=0"),
                 FatalError);
    EXPECT_THROW(TraceGenSpec::parse("poisson,seed=-1"), FatalError);
    EXPECT_THROW(TraceGenSpec::parse("poisson,bogus=1"), FatalError);
    EXPECT_THROW(TraceGenSpec::parse("poisson,rate"), FatalError);
    EXPECT_THROW(TraceGenSpec::parse("poisson,apps=notanapp"),
                 FatalError);
    EXPECT_THROW(TraceGenSpec::parse("sine,amplitude=1"),
                 FatalError);
    EXPECT_THROW(TraceGenSpec::parse("mmpp,burst-factor=0.5"),
                 FatalError);
    EXPECT_THROW(TraceGenSpec::parse("flash,flash-factor=0.5"),
                 FatalError);
    EXPECT_THROW(TraceGenSpec::parse("batch,batch-mean=0.5"),
                 FatalError);
}

} // namespace
} // namespace fastcap
