/**
 * @file
 * The replayer's placement semantics, pinned case by case: FIFO
 * admission with head-of-line blocking, lowest-index-first core
 * assignment, departures-before-arrivals at equal times, multi-core
 * jobs binding k cores to one profile, load shedding at the pending
 * bound, and invariance of the swap sequence under the epoch
 * granularity it is driven with.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_replay.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

/** In-memory TraceSource for hand-crafted replay cases. */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(std::vector<TraceEvent> evs)
        : _evs(std::move(evs))
    {
    }

    bool
    next(TraceEvent &ev) override
    {
        if (_i >= _evs.size())
            return false;
        ev = _evs[_i++];
        return true;
    }

    const std::string &name() const override { return _name; }

  private:
    std::vector<TraceEvent> _evs;
    std::size_t _i = 0;
    std::string _name = "<vector>";
};

TraceEvent
ev(Seconds arrival, const std::string &app, Seconds duration,
   int cores)
{
    TraceEvent e;
    e.arrival = arrival;
    e.app = app;
    e.duration = duration;
    e.cores = cores;
    return e;
}

/** (core, app-name) pairs in swap order. */
using SwapLog = std::vector<std::pair<int, std::string>>;

TraceReplayer::SwapFn
logger(SwapLog &log)
{
    return [&log](int core, const AppProfile &app) {
        log.emplace_back(core, app.name());
    };
}

TEST(TraceReplay, PlacesOnLowestIndexFreeCores)
{
    TraceReplayer rep(
        std::make_unique<VectorSource>(std::vector<TraceEvent>{
            ev(0.00, "milc", 1.0, 1),
            ev(0.01, "gcc", 1.0, 2),
            ev(0.02, "swim", 1.0, 1),
        }),
        4);
    SwapLog log;
    rep.advanceTo(0.05, logger(log));
    const SwapLog want = {
        {0, "milc"}, {1, "gcc"}, {2, "gcc"}, {3, "swim"}};
    EXPECT_EQ(log, want);
    EXPECT_EQ(rep.stats().placed, 3u);
    EXPECT_EQ(rep.stats().peakRunning, 4u);
}

TEST(TraceReplay, DeparturesSwapFreedCoresToIdle)
{
    TraceReplayer rep(
        std::make_unique<VectorSource>(std::vector<TraceEvent>{
            ev(0.0, "milc", 0.1, 2),
            ev(0.3, "gcc", 0.1, 1),
        }),
        4);
    SwapLog log;
    rep.advanceTo(0.2, logger(log));
    SwapLog want = {
        {0, "milc"}, {1, "milc"}, {0, "idle"}, {1, "idle"}};
    EXPECT_EQ(log, want);
    EXPECT_EQ(rep.stats().completed, 1u);
    // The freed low cores are reused by the next job.
    rep.advanceTo(0.35, logger(log));
    want.emplace_back(0, "gcc");
    EXPECT_EQ(log, want);
}

TEST(TraceReplay, DeparturesComeBeforeArrivalsAtEqualTimes)
{
    // A ends exactly when B arrives on a one-core machine: B must
    // observe the freed core and start immediately, not queue.
    TraceReplayer rep(
        std::make_unique<VectorSource>(std::vector<TraceEvent>{
            ev(0.0, "milc", 0.5, 1),
            ev(0.5, "gcc", 0.1, 1),
        }),
        1);
    SwapLog log;
    rep.advanceTo(0.5, logger(log));
    const SwapLog want = {{0, "milc"}, {0, "idle"}, {0, "gcc"}};
    EXPECT_EQ(log, want);
    EXPECT_EQ(rep.pending(), 0u);
}

TEST(TraceReplay, FifoWithHeadOfLineBlocking)
{
    // A(1 core) runs; B(2 cores) then C(1 core) queue. One core is
    // free the whole time, but C must not jump over B.
    TraceReplayer rep(
        std::make_unique<VectorSource>(std::vector<TraceEvent>{
            ev(0.0, "milc", 0.2, 1),
            ev(0.01, "gcc", 0.1, 2),
            ev(0.02, "swim", 0.1, 1),
        }),
        2);
    SwapLog log;
    rep.advanceTo(0.1, logger(log));
    EXPECT_EQ(rep.running(), 1u);
    EXPECT_EQ(rep.pending(), 2u);
    const SwapLog head = {{0, "milc"}};
    EXPECT_EQ(log, head);
    // A departs at 0.2: B takes both cores; C still blocked.
    rep.advanceTo(0.25, logger(log));
    const SwapLog mid = {
        {0, "milc"}, {0, "idle"}, {0, "gcc"}, {1, "gcc"}};
    EXPECT_EQ(log, mid);
    EXPECT_EQ(rep.pending(), 1u);
    // B departs at 0.3: C finally runs, on the lowest core.
    rep.advanceTo(0.4, logger(log));
    ASSERT_GE(log.size(), 7u);
    EXPECT_EQ(log[6], (std::pair<int, std::string>{0, "swim"}));
    rep.advanceTo(1.0, logger(log));
    EXPECT_TRUE(rep.idle());
    EXPECT_EQ(rep.stats().completed, 3u);
}

TEST(TraceReplay, ShedsArrivalsWhenPendingIsFull)
{
    std::vector<TraceEvent> evs = {ev(0.0, "milc", 10.0, 1)};
    for (int i = 1; i <= 6; ++i)
        evs.push_back(ev(0.01 * i, "gcc", 0.1, 1));
    TraceReplayer rep(std::make_unique<VectorSource>(evs), 1,
                      /*max_pending=*/2);
    SwapLog log;
    rep.advanceTo(1.0, logger(log));
    EXPECT_EQ(rep.stats().arrivals, 7u);
    EXPECT_EQ(rep.stats().placed, 1u);
    EXPECT_EQ(rep.stats().dropped, 4u);
    EXPECT_EQ(rep.stats().peakPending, 2u);
    EXPECT_EQ(rep.pending(), 2u);
}

TEST(TraceReplay, SwapSequenceIsInvariantUnderEpochGranularity)
{
    const std::vector<TraceEvent> evs = {
        ev(0.00, "milc", 0.07, 2), ev(0.01, "gcc", 0.03, 1),
        ev(0.02, "swim", 0.11, 3), ev(0.05, "ammp", 0.02, 1),
        ev(0.05, "gcc", 0.05, 2),  ev(0.13, "milc", 0.01, 4),
    };
    SwapLog coarse;
    {
        TraceReplayer rep(std::make_unique<VectorSource>(evs), 4);
        rep.advanceTo(1.0, logger(coarse));
        EXPECT_TRUE(rep.idle());
    }
    SwapLog fine;
    {
        TraceReplayer rep(std::make_unique<VectorSource>(evs), 4);
        for (int i = 1; i <= 1000; ++i)
            rep.advanceTo(0.001 * i, logger(fine));
        EXPECT_TRUE(rep.idle());
    }
    EXPECT_EQ(coarse, fine);
}

TEST(TraceReplay, FatalWhenAJobExceedsTheMachine)
{
    TraceReplayer rep(
        std::make_unique<VectorSource>(std::vector<TraceEvent>{
            ev(0.0, "milc", 0.1, 8)}),
        4);
    SwapLog log;
    EXPECT_THROW(rep.advanceTo(1.0, logger(log)), FatalError);
}

TEST(TraceReplay, RejectsBadConstruction)
{
    EXPECT_THROW(TraceReplayer(nullptr, 4), FatalError);
    EXPECT_THROW(
        TraceReplayer(std::make_unique<VectorSource>(
                          std::vector<TraceEvent>{}),
                      0),
        FatalError);
}

} // namespace
} // namespace fastcap
