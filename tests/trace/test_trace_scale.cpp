/**
 * @file
 * The streaming acceptance test from the trace-subsystem issue: a
 * one-million-event generated trace drives a 256-core experiment
 * end to end. The events are never materialized — the generator
 * produces them lazily and the replayer holds at most one read-ahead
 * event, the bounded pending queue and one record per busy core — so
 * the run's live footprint is set by the machine, not the trace.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hpp"
#include "policies/registry.hpp"
#include "sim/config.hpp"
#include "trace/trace_generator.hpp"
#include "trace/trace_replay.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

// 1e8 jobs/s for 1M events: all arrivals land within ~10ms, inside
// the experiment's 8 x 2ms epoch window.
const char *const kMillionEventSpec =
    "gen:poisson,rate=1e8,horizon=1,events=1000000,"
    "mean-duration=0.004,max-cores=2,seed=31";

TEST(TraceScale, MillionEventsStreamThroughAReplayer)
{
    // The replayer alone first: every event flows through, memory
    // stays bounded by the queue cap and the machine width.
    TraceReplayer rep(makeTraceSource(kMillionEventSpec), 256);
    std::size_t swaps = 0;
    rep.advanceTo(1.0,
                  [&swaps](int, const AppProfile &) { ++swaps; });
    const TraceReplayStats &st = rep.stats();
    EXPECT_EQ(st.arrivals, 1000000u);
    EXPECT_EQ(st.arrivals, st.placed + st.dropped);
    // At this arrival rate the machine saturates: shedding must have
    // kicked in, and the pending queue must have held its bound.
    EXPECT_GT(st.dropped, 0u);
    EXPECT_LE(st.peakPending, 4u * 256u);
    EXPECT_LE(st.peakRunning, 256u);
    EXPECT_GT(swaps, 0u);
}

TEST(TraceScale, MillionEventsDriveA256CoreExperiment)
{
    SimConfig cfg = SimConfig::defaultConfig(256);
    cfg.seed = 0x1000000eULL;
    cfg.epochLength = fromMs(2);

    ExperimentConfig ecfg;
    ecfg.budgetFraction = 0.8;
    ecfg.targetInstructions = 1e12; // epoch-bounded run
    ecfg.maxEpochs = 8;             // 16ms > the 10ms arrival span
    ecfg.scenario.name = "million";
    ecfg.scenario.trace = kMillionEventSpec;

    auto policy = makePolicy("Uncapped");
    ExperimentRunner runner(cfg, workloads::mix("idle", 256),
                            *policy, ecfg);
    const ExperimentResult res = runner.run();

    EXPECT_TRUE(res.traceDriven);
    EXPECT_EQ(res.trace.arrivals, 1000000u);
    // The run ends at the epoch cap, so jobs may still sit in the
    // pending queue — but never more than its bound, which is the
    // memory guarantee this test exists for.
    EXPECT_LE(res.trace.arrivals -
                  (res.trace.placed + res.trace.dropped),
              4u * 256u);
    EXPECT_GT(res.trace.placed, 0u);
    EXPECT_LE(res.trace.peakPending, 4u * 256u);
    EXPECT_LE(res.trace.peakRunning, 256u);
    EXPECT_EQ(res.epochs.size(), 8u);
}

} // namespace
} // namespace fastcap
