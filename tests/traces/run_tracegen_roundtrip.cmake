# fastcap_tracegen round-trip check, run as a ctest:
#
#   cmake -DTRACEGEN=<fastcap_tracegen> -DSIM=<fastcap_sim>
#         -DOUTDIR=<scratch dir> -P run_tracegen_roundtrip.cmake
#
# 1. The same generator spec written twice is byte-identical.
# 2. The canonical spec embedded in the file's provenance header
#    regenerates the file byte-identically (the corpus regeneration
#    recipe in docs/TRACES.md relies on this).
# 3. The generated trace replays through fastcap_sim.

foreach(var TRACEGEN SIM OUTDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_tracegen_roundtrip.cmake: missing -D${var}=...")
  endif()
endforeach()

set(spec "mmpp,rate=200,horizon=0.1,burst-factor=6,mean-burst=0.02,mean-quiet=0.05,max-cores=2,seed=99")
set(a ${OUTDIR}/roundtrip_a.trace)
set(b ${OUTDIR}/roundtrip_b.trace)
set(c ${OUTDIR}/roundtrip_c.trace)

foreach(out ${a} ${b})
  execute_process(
    COMMAND ${TRACEGEN} --gen ${spec} --out ${out}
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fastcap_tracegen failed (${rc}): ${err}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "tracegen is not reproducible: two runs of --gen '${spec}' differ")
endif()

# Extract the canonical spec from the provenance header and rerun it.
file(STRINGS ${a} provenance REGEX "^# fastcap_tracegen --gen ")
string(REGEX REPLACE "^# fastcap_tracegen --gen \"(.*)\"$" "\\1"
  canonical "${provenance}")
if(canonical STREQUAL "" OR canonical STREQUAL "${provenance}")
  message(FATAL_ERROR "no provenance header in ${a}: '${provenance}'")
endif()
execute_process(
  COMMAND ${TRACEGEN} --gen ${canonical} --out ${c}
  RESULT_VARIABLE rc
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "regeneration from the embedded spec failed (${rc}): ${err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${c}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "the embedded spec '${canonical}' does not regenerate ${a}")
endif()

# The generated trace must replay cleanly end to end.
execute_process(
  COMMAND ${SIM} --workload idle --cores 8 --policy Uncapped
          --instructions 1e12 --max-epochs 25 --trace ${a}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fastcap_sim replay failed (${rc}): ${err}")
endif()
if(NOT out MATCHES "arrived")
  message(FATAL_ERROR "fastcap_sim did not report replay stats: ${out}")
endif()
