/**
 * @file
 * Tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

ArgParser
makeParser()
{
    ArgParser args("prog", "test program");
    args.addString("workload", "MIX3", "workload name");
    args.addDouble("budget", 0.6, "budget fraction");
    args.addInt("cores", 16, "core count");
    args.addFlag("trace", "emit trace");
    return args;
}

TEST(Args, DefaultsWithoutArguments)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog"};
    ASSERT_TRUE(args.parse(1, argv));
    EXPECT_EQ(args.getString("workload"), "MIX3");
    EXPECT_DOUBLE_EQ(args.getDouble("budget"), 0.6);
    EXPECT_EQ(args.getInt("cores"), 16);
    EXPECT_FALSE(args.getFlag("trace"));
    EXPECT_FALSE(args.provided("budget"));
}

TEST(Args, SpaceSeparatedValues)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--workload", "MEM1", "--budget",
                          "0.75", "--cores", "64"};
    ASSERT_TRUE(args.parse(7, argv));
    EXPECT_EQ(args.getString("workload"), "MEM1");
    EXPECT_DOUBLE_EQ(args.getDouble("budget"), 0.75);
    EXPECT_EQ(args.getInt("cores"), 64);
    EXPECT_TRUE(args.provided("budget"));
}

TEST(Args, EqualsSeparatedValues)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--budget=0.5", "--workload=ILP2"};
    ASSERT_TRUE(args.parse(3, argv));
    EXPECT_DOUBLE_EQ(args.getDouble("budget"), 0.5);
    EXPECT_EQ(args.getString("workload"), "ILP2");
}

TEST(Args, BooleanFlagForms)
{
    ArgParser a = makeParser();
    const char *argv1[] = {"prog", "--trace"};
    ASSERT_TRUE(a.parse(2, argv1));
    EXPECT_TRUE(a.getFlag("trace"));

    ArgParser b = makeParser();
    const char *argv2[] = {"prog", "--trace=0"};
    ASSERT_TRUE(b.parse(2, argv2));
    EXPECT_FALSE(b.getFlag("trace"));
}

TEST(Args, ScientificNotationDoubles)
{
    ArgParser args("p", "d");
    args.addDouble("instructions", 1e6, "count");
    const char *argv[] = {"p", "--instructions", "5e7"};
    ASSERT_TRUE(args.parse(3, argv));
    EXPECT_DOUBLE_EQ(args.getDouble("instructions"), 5e7);
}

TEST(Args, RejectsUnknownOption)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--bogus", "1"};
    EXPECT_FALSE(args.parse(3, argv));
}

TEST(Args, RejectsBadNumericValue)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--budget", "sixty"};
    EXPECT_FALSE(args.parse(3, argv));

    ArgParser args2 = makeParser();
    const char *argv2[] = {"prog", "--cores", "3.5"};
    EXPECT_FALSE(args2.parse(3, argv2));
}

TEST(Args, RejectsMissingValue)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--budget"};
    EXPECT_FALSE(args.parse(2, argv));
}

TEST(Args, RejectsPositionalArgument)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "stray"};
    EXPECT_FALSE(args.parse(2, argv));
}

TEST(Args, HelpReturnsFalseAndLists)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(args.parse(2, argv));
    const std::string help = args.helpText();
    EXPECT_NE(help.find("--workload"), std::string::npos);
    EXPECT_NE(help.find("--budget"), std::string::npos);
    EXPECT_NE(help.find("default: 0.6"), std::string::npos);
}

TEST(Args, WrongTypeAccessPanics)
{
    ArgParser args = makeParser();
    const char *argv[] = {"prog"};
    ASSERT_TRUE(args.parse(1, argv));
    EXPECT_THROW(args.getDouble("workload"), PanicError);
    EXPECT_THROW(args.getString("nonexistent"), PanicError);
}

TEST(Args, DuplicateDeclarationPanics)
{
    ArgParser args("p", "d");
    args.addInt("n", 1, "x");
    EXPECT_THROW(args.addDouble("n", 2.0, "y"), PanicError);
}

} // namespace
} // namespace fastcap
