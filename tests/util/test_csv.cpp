/**
 * @file
 * Tests for the CSV writer used by benchmark output.
 */

#include <gtest/gtest.h>

#include <string>

#include "util/csv.hpp"
#include "util/logging.hpp"

namespace fastcap {
namespace {

std::string
fileContents(std::FILE *f)
{
    std::fflush(f);
    const long size = std::ftell(f);
    std::string out(static_cast<std::size_t>(size), '\0');
    std::rewind(f);
    const std::size_t got = std::fread(out.data(), 1, out.size(), f);
    out.resize(got);
    return out;
}

TEST(Csv, EscapePassthrough)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("with space"), "with space");
}

TEST(Csv, EscapeQuotesCommasAndNewlines)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, HeaderAndRows)
{
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    CsvWriter w(tmp);
    w.header({"epoch", "power"});
    w.rowNumeric({1.0, 71.9});
    w.rowLabeled("MIX3", {0.599});
    EXPECT_EQ(w.rowsWritten(), 2u);

    const std::string text = fileContents(tmp);
    EXPECT_EQ(text, "epoch,power\n1,71.9\nMIX3,0.599\n");
    std::fclose(tmp);
}

TEST(Csv, DoubleHeaderPanics)
{
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    CsvWriter w(tmp);
    w.header({"a"});
    EXPECT_THROW(w.header({"b"}), PanicError);
    std::fclose(tmp);
}

TEST(Csv, QuotedCellRoundTrips)
{
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    CsvWriter w(tmp);
    w.row({"a,b", "c"});
    const std::string text = fileContents(tmp);
    EXPECT_EQ(text, "\"a,b\",c\n");
    std::fclose(tmp);
}

} // namespace
} // namespace fastcap
