/**
 * @file
 * Tests for the logging/error-reporting utilities.
 */

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace fastcap {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user misconfiguration %d", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("internal bug %s", "details"), PanicError);
}

TEST(Logging, FatalMessageIsFormatted)
{
    try {
        fatal("value=%d name=%s", 7, "core");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7 name=core");
    }
}

TEST(Logging, PanicIsLogicError)
{
    // panic() signals library bugs; it must be distinguishable from
    // user errors by type.
    try {
        panic("boom");
    } catch (const std::logic_error &) {
        SUCCEED();
        return;
    } catch (...) {
        FAIL() << "panic threw the wrong type";
    }
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    EXPECT_NO_THROW(FASTCAP_ASSERT(1 + 1 == 2));
}

TEST(Logging, AssertMacroPanicsOnFalse)
{
    EXPECT_THROW(FASTCAP_ASSERT(1 + 1 == 3), PanicError);
}

TEST(Logging, FormatHelperHandlesLongStrings)
{
    const std::string big(500, 'x');
    const std::string out = detail::format("<%s>", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
}

TEST(Logging, LevelGatesEmission)
{
    Logger &log = Logger::global();
    const LogLevel old = log.level();

    // Redirect to a temp file and count bytes at different levels.
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    log.stream(tmp);

    log.level(LogLevel::Silent);
    warn("should not appear");
    std::fflush(tmp);
    EXPECT_EQ(std::ftell(tmp), 0);

    log.level(LogLevel::Warn);
    warn("should appear");
    std::fflush(tmp);
    EXPECT_GT(std::ftell(tmp), 0);

    log.level(old);
    log.stream(stderr);
    std::fclose(tmp);
}

TEST(Logging, InformSuppressedAtWarnLevel)
{
    Logger &log = Logger::global();
    const LogLevel old = log.level();
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    log.stream(tmp);

    log.level(LogLevel::Warn);
    inform("hidden at warn level");
    std::fflush(tmp);
    EXPECT_EQ(std::ftell(tmp), 0);

    log.level(old);
    log.stream(stderr);
    std::fclose(tmp);
}

} // namespace
} // namespace fastcap
