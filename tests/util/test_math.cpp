/**
 * @file
 * Tests for root finding and least-squares fitting — the numeric
 * engines behind the FastCap inner solve and the online model fitter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/math.hpp"

namespace fastcap {
namespace {

TEST(Bisect, FindsSimpleRoot)
{
    const auto f = [](double x) { return x * x - 4.0; };
    const RootResult r = bisect(f, 0.0, 10.0);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 2.0, 1e-9);
}

TEST(Bisect, AcceptsRootAtEndpoint)
{
    const auto f = [](double x) { return x - 1.0; };
    const RootResult r = bisect(f, 1.0, 5.0);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 1.0, 1e-9);
}

TEST(Bisect, ReportsNoSignChange)
{
    const auto f = [](double x) { return x * x + 1.0; };
    const RootResult r = bisect(f, -1.0, 1.0);
    EXPECT_FALSE(r.converged);
}

TEST(Bisect, SwapsReversedBracket)
{
    const auto f = [](double x) { return x - 3.0; };
    const RootResult r = bisect(f, 10.0, 0.0);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 3.0, 1e-9);
}

TEST(SolveMonotone, SaturatesLowWhenAlwaysPositive)
{
    // f(lo) > 0: even the lowest x overshoots the target.
    const auto f = [](double x) { return x + 1.0; };
    const RootResult r = solveMonotone(f, 0.0, 10.0);
    EXPECT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.x, 0.0);
}

TEST(SolveMonotone, SaturatesHighWhenAlwaysNegative)
{
    const auto f = [](double x) { return x - 100.0; };
    const RootResult r = solveMonotone(f, 0.0, 10.0);
    EXPECT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.x, 10.0);
}

TEST(SolveMonotone, FindsInteriorRoot)
{
    const auto f = [](double x) { return std::pow(x, 3.0) - 27.0; };
    const RootResult r = solveMonotone(f, 0.0, 10.0);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x, 3.0, 1e-8);
}

// Regression (ISSUE 4): endpoint convergence used to leave
// iterations == 0 even though the solve evaluated f, so callers
// metering cost could not tell a solved bracket from one never run.
TEST(Bisect, EndpointConvergenceCountsEvaluations)
{
    const auto at_lo = [](double x) { return x - 1.0; };
    const RootResult lo = bisect(at_lo, 1.0, 5.0);
    EXPECT_TRUE(lo.converged);
    EXPECT_EQ(lo.iterations, 1) << "f(lo) was evaluated";

    const auto at_hi = [](double x) { return x - 5.0; };
    const RootResult hi = bisect(at_hi, 1.0, 5.0);
    EXPECT_TRUE(hi.converged);
    EXPECT_EQ(hi.iterations, 2) << "f(lo) and f(hi) were evaluated";

    const auto no_sign = [](double x) { return x * x + 1.0; };
    const RootResult ns = bisect(no_sign, -1.0, 1.0);
    EXPECT_FALSE(ns.converged);
    EXPECT_EQ(ns.iterations, 2);
}

TEST(Bisect, InteriorRootCountsAllEvaluations)
{
    int calls = 0;
    const auto f = [&calls](double x) {
        ++calls;
        return x - 3.0;
    };
    const RootResult r = bisect(f, 0.0, 10.0, 1e-12, 1e-12);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.iterations, calls)
        << "iterations must equal the evaluations consumed";
    EXPECT_GT(r.iterations, 2);
}

// Regression (ISSUE 4): saturated endpoints used to report
// converged=true with a large residual, indistinguishable from a
// genuine root. The saturated flag makes infeasibility explicit.
TEST(SolveMonotone, FlagsSaturatedLowEndpoint)
{
    const auto f = [](double x) { return x + 50.0; };
    const RootResult r = solveMonotone(f, 0.0, 10.0);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.saturated) << "residual 50 at the clamp";
    EXPECT_DOUBLE_EQ(r.x, 0.0);
    EXPECT_EQ(r.iterations, 1);
}

TEST(SolveMonotone, FlagsSaturatedHighEndpoint)
{
    const auto f = [](double x) { return x - 100.0; };
    const RootResult r = solveMonotone(f, 0.0, 10.0);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.saturated);
    EXPECT_DOUBLE_EQ(r.x, 10.0);
    EXPECT_EQ(r.iterations, 2);
}

TEST(SolveMonotone, GenuineEndpointRootIsNotSaturated)
{
    // f(lo) = 0 exactly: the clamp and the root coincide; this is a
    // solution, not a saturation diagnostic.
    const auto f = [](double x) { return x; };
    const RootResult r = solveMonotone(f, 0.0, 10.0);
    EXPECT_TRUE(r.converged);
    EXPECT_FALSE(r.saturated);
    EXPECT_DOUBLE_EQ(r.x, 0.0);
}

TEST(SolveMonotone, InteriorRootIsNotSaturated)
{
    const auto f = [](double x) { return x - 4.0; };
    const RootResult r = solveMonotone(f, 0.0, 10.0);
    EXPECT_TRUE(r.converged);
    EXPECT_FALSE(r.saturated);
    EXPECT_NEAR(r.x, 4.0, 1e-8);
}

TEST(BisectWithEndpoints, MatchesBisectBitForBit)
{
    const auto f = [](double x) { return std::cos(x) - x; };
    const double lo = 0.0, hi = 2.0;
    const RootResult plain = bisect(f, lo, hi, 1e-14, 1e-15);
    const RootResult seeded = bisectWithEndpoints(
        f, lo, f(lo), hi, f(hi), 1e-14, 1e-15);
    EXPECT_EQ(plain.x, seeded.x)
        << "identical iterate sequence, identical bits";
    EXPECT_EQ(plain.fx, seeded.fx);
    EXPECT_EQ(plain.converged, seeded.converged);
    // Only the endpoint evaluations differ in the accounting.
    EXPECT_EQ(plain.iterations, seeded.iterations + 2);
}

TEST(FitLinear, ExactTwoPointFit)
{
    const std::vector<double> xs{1.0, 3.0};
    const std::vector<double> ys{2.0, 8.0};
    const LinearFit fit = fitLinear(xs, ys);
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.slope, 3.0, 1e-12);
    EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLinear, RejectsDegenerateInput)
{
    const std::vector<double> xs{2.0, 2.0};
    const std::vector<double> ys{1.0, 3.0};
    EXPECT_FALSE(fitLinear(xs, ys).valid);
    EXPECT_FALSE(fitLinear(std::vector<double>{1.0},
                           std::vector<double>{1.0}).valid);
}

TEST(FitLinear, NoisyFitRecoversSlope)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.1 * i;
        xs.push_back(x);
        ys.push_back(2.5 * x + 1.0 + ((i % 2) ? 0.01 : -0.01));
    }
    const LinearFit fit = fitLinear(xs, ys);
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.slope, 2.5, 0.01);
    EXPECT_GT(fit.r2, 0.999);
}

TEST(FitPowerLaw, RecoversExactPowerLaw)
{
    // y = 3.5 x^2.7 — the Eq. 2 shape.
    std::vector<double> xs, ys;
    for (double x : {0.55, 0.75, 1.0}) {
        xs.push_back(x);
        ys.push_back(3.5 * std::pow(x, 2.7));
    }
    const PowerLawFit fit = fitPowerLaw(xs, ys);
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.scale, 3.5, 1e-9);
    EXPECT_NEAR(fit.exponent, 2.7, 1e-9);
}

TEST(FitPowerLaw, IgnoresNonPositivePoints)
{
    const std::vector<double> xs{-1.0, 0.5, 1.0, 0.0};
    const std::vector<double> ys{5.0, std::sqrt(0.5) * 2.0, 2.0, 7.0};
    const PowerLawFit fit = fitPowerLaw(xs, ys);
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.exponent, 0.5, 1e-9);
    EXPECT_NEAR(fit.scale, 2.0, 1e-9);
}

TEST(FitPowerLaw, InvalidWithOneUsablePoint)
{
    const std::vector<double> xs{1.0};
    const std::vector<double> ys{2.0};
    EXPECT_FALSE(fitPowerLaw(xs, ys).valid);
}

TEST(ClampSafe, HandlesReversedBounds)
{
    EXPECT_DOUBLE_EQ(clampSafe(5.0, 10.0, 0.0), 5.0);
    EXPECT_DOUBLE_EQ(clampSafe(-1.0, 0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(clampSafe(11.0, 0.0, 10.0), 10.0);
}

TEST(ApproxEqual, RelativeToleranceSemantics)
{
    EXPECT_TRUE(approxEqual(1e9, 1e9 + 1.0, 1e-8));
    EXPECT_FALSE(approxEqual(1.0, 1.1, 1e-3));
    EXPECT_TRUE(approxEqual(0.0, 0.0));
}

/** Property sweep: monotone solve hits the budget across scales. */
class SolveMonotoneProperty
    : public ::testing::TestWithParam<double>
{};

TEST_P(SolveMonotoneProperty, RootResidualSmall)
{
    const double target = GetParam();
    const auto f = [target](double d) {
        // Shape of FastCap's inner residual: sum of power-law terms
        // minus a budget.
        return 10.0 * std::pow(d, 3.0) + 4.0 * d - target;
    };
    const RootResult r = solveMonotone(f, 1e-6, 1.0);
    ASSERT_TRUE(r.converged);
    if (f(1e-6) > 0.0) {
        EXPECT_DOUBLE_EQ(r.x, 1e-6);
    } else if (f(1.0) < 0.0) {
        EXPECT_DOUBLE_EQ(r.x, 1.0);
    } else {
        EXPECT_NEAR(f(r.x), 0.0, 1e-6 * std::max(1.0, target));
    }
}

INSTANTIATE_TEST_SUITE_P(Targets, SolveMonotoneProperty,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 13.9,
                                           14.0, 100.0));

} // namespace
} // namespace fastcap
