/**
 * @file
 * Tests for the deterministic RNG: reproducibility, distribution
 * sanity, and stream splitting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace fastcap {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 3.0);
        ASSERT_GE(v, 2.0);
        ASSERT_LT(v, 3.0);
    }
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.below(32);
        ASSERT_LT(v, 32u);
        seen.insert(v);
    }
    // All 32 bank indices should be hit over 10k draws.
    EXPECT_EQ(seen.size(), 32u);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(19);
    const double mean = 25e-9; // a think time
    double acc = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.exponential(mean);
        ASSERT_GE(v, 0.0);
        acc += v;
    }
    EXPECT_NEAR(acc / n, mean, 0.02 * mean);
}

TEST(Rng, NormalMoments)
{
    Rng rng(23);
    double s1 = 0.0;
    double s2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        s1 += v;
        s2 += v * v;
    }
    EXPECT_NEAR(s1 / n, 0.0, 0.02);
    EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, JitterHasUnitMean)
{
    // The lognormal jitter multiplies think times; unit mean keeps
    // average rates calibrated.
    Rng rng(29);
    double acc = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.jitter(0.25);
        ASSERT_GT(v, 0.0);
        acc += v;
    }
    EXPECT_NEAR(acc / n, 1.0, 0.02);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic)
{
    Rng parent_a(99);
    Rng parent_b(99);
    Rng child_a = parent_a.split(5);
    Rng child_b = parent_b.split(5);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(child_a(), child_b());

    // Different stream ids produce different sequences.
    Rng parent_c(99);
    Rng other = parent_c.split(6);
    Rng parent_d(99);
    Rng same_pos = parent_d.split(5);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (other() == same_pos());
    EXPECT_LT(same, 3);
}

} // namespace
} // namespace fastcap
