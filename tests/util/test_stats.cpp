/**
 * @file
 * Tests for statistics containers (RunningStat, TimeWeightedStat,
 * Ewma, Histogram).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace fastcap {
namespace {

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsSafe)
{
    RunningStat s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, MergeMatchesCombinedStream)
{
    RunningStat a, b, whole;
    for (int i = 0; i < 100; ++i) {
        const double v = std::sin(i * 0.7) * 3.0 + i * 0.01;
        if (i % 2)
            a.add(v);
        else
            b.add(v);
        whole.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(2.0);
    const double mean_before = a.mean();
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), mean_before);
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(TimeWeightedStat, PiecewiseConstantAverage)
{
    // Queue length: 1 for 2s, 3 for 1s, 0 for 1s -> mean 1.25.
    TimeWeightedStat q;
    q.reset(0.0, 1.0);
    q.record(3.0, 2.0);
    q.record(0.0, 3.0);
    EXPECT_NEAR(q.mean(4.0), (1.0 * 2 + 3.0 * 1 + 0.0 * 1) / 4.0,
                1e-12);
}

TEST(TimeWeightedStat, ZeroSpanReturnsCurrent)
{
    TimeWeightedStat q;
    q.reset(5.0, 7.0);
    EXPECT_DOUBLE_EQ(q.mean(5.0), 7.0);
}

TEST(TimeWeightedStat, BackwardsTimePanics)
{
    TimeWeightedStat q;
    q.reset(0.0, 0.0);
    q.record(1.0, 2.0);
    EXPECT_THROW(q.record(2.0, 1.0), PanicError);
}

TEST(Ewma, FirstSampleSeeds)
{
    Ewma e(0.5);
    EXPECT_FALSE(e.seeded());
    e.add(10.0);
    EXPECT_TRUE(e.seeded());
    EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesToConstant)
{
    Ewma e(0.25);
    for (int i = 0; i < 100; ++i)
        e.add(4.2);
    EXPECT_NEAR(e.value(), 4.2, 1e-9);
}

TEST(Ewma, WeightsNewSamples)
{
    Ewma e(0.5);
    e.add(0.0);
    e.add(10.0);
    EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Histogram, BinningAndEdges)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);   // underflow
    h.add(0.0);    // bin 0
    h.add(9.999);  // bin 9
    h.add(10.0);   // overflow
    h.add(5.5);    // bin 5
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.binLo(5), 5.0);
    EXPECT_DOUBLE_EQ(h.binHi(5), 6.0);
}

TEST(Histogram, QuantileInterpolation)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Ewma, RejectsAlphaOutsideUnitInterval)
{
    EXPECT_THROW(Ewma(0.0), FatalError);   // frozen average
    EXPECT_THROW(Ewma(-0.5), FatalError);  // divergent
    EXPECT_THROW(Ewma(1.5), FatalError);   // oscillating
    EXPECT_NO_THROW(Ewma(1.0));            // degenerate but valid
    EXPECT_NO_THROW(Ewma(1e-9));
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 10), FatalError);
    EXPECT_THROW(Histogram(0.0, 10.0, 0), FatalError);
}

TEST(Histogram, TopQuantileEndsAtHighestOccupiedBin)
{
    Histogram h(0.0, 10.0, 10);
    h.add(2.5); // bin 2
    h.add(5.5); // bin 5
    h.add(5.7); // bin 5
    // No overflow: the maximum lives in bin 5, so q=1 must report
    // that bin's upper edge, not the histogram bound 10.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), h.binHi(5));
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);
}

TEST(Histogram, TopQuantileWithOverflowIsUpperBound)
{
    Histogram h(0.0, 10.0, 10);
    h.add(2.5);
    h.add(42.0); // overflow: the true max is beyond the range
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, TopQuantileOnlyUnderflowIsLowerBound)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-3.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.5);
    h.add(2.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.binCount(2), 0u);
}

TEST(Histogram, SummaryMentionsCount)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.1);
    h.add(0.2);
    const std::string s = h.summary();
    EXPECT_NE(s.find("n=2"), std::string::npos);
}

} // namespace
} // namespace fastcap
