/**
 * @file
 * Tests for the string helpers, most importantly the checked
 * formatting primitive the R3 lint rule points every fixed-buffer
 * snprintf at: truncation must panic, never pass silently (the
 * PR 4 peak-power cache-key bug class).
 */

#include <gtest/gtest.h>

#include <string>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace fastcap {
namespace {

TEST(CheckedSnprintf, FormatsAndReturnsLength)
{
    char buf[32];
    const int n = checkedSnprintf(buf, sizeof(buf), "%.6g", 0.25);
    EXPECT_EQ(n, 4);
    EXPECT_STREQ(buf, "0.25");
}

TEST(CheckedSnprintf, ExactFitIsStillAFullBuffer)
{
    // 5 characters + terminator exactly fills a 6-byte buffer.
    char buf[6];
    EXPECT_EQ(checkedSnprintf(buf, sizeof(buf), "%d", 12345), 5);
    EXPECT_STREQ(buf, "12345");
}

TEST(CheckedSnprintf, TruncationPanics)
{
    char buf[8];
    EXPECT_THROW(checkedSnprintf(buf, sizeof(buf), "%.6f", 1e300),
                 PanicError);
    // One byte short: would need 8 chars + NUL.
    EXPECT_THROW(checkedSnprintf(buf, sizeof(buf), "%08d", 7),
                 PanicError);
}

TEST(Trimmed, StripsAsciiWhitespace)
{
    EXPECT_EQ(trimmed("  a b\t\r"), "a b");
    EXPECT_EQ(trimmed("\t \r"), "");
    EXPECT_EQ(trimmed("x"), "x");
}

TEST(ParseDouble, StrictFullStringParse)
{
    double v = 0.0;
    EXPECT_TRUE(parseDouble("2.5e-3", v));
    EXPECT_EQ(v, 2.5e-3);
    EXPECT_FALSE(parseDouble("", v));
    EXPECT_FALSE(parseDouble("1.0x", v));
    EXPECT_FALSE(parseDouble("nan", v));
    EXPECT_FALSE(parseDouble("inf", v));
}

} // namespace
} // namespace fastcap
