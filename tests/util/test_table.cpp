/**
 * @file
 * Tests for the ASCII table formatter.
 */

#include <gtest/gtest.h>

#include "util/logging.hpp"
#include "util/table.hpp"

namespace fastcap {
namespace {

TEST(AsciiTable, RendersAlignedColumns)
{
    AsciiTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2.5"});
    const std::string out = t.render();

    // Header first, separator second, rows after.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);

    // All lines (except possibly the last newline) equal length.
    std::size_t prev = std::string::npos;
    std::size_t start = 0;
    int lines = 0;
    while (start < out.size()) {
        const std::size_t nl = out.find('\n', start);
        const std::size_t len = nl - start;
        if (lines > 0 && prev != std::string::npos) {
            // Rows may have trailing padding; lengths must not exceed
            // the header line.
            EXPECT_LE(len, std::max(prev, len));
        }
        prev = len;
        start = nl + 1;
        ++lines;
    }
    EXPECT_EQ(lines, 4); // header + separator + 2 rows
}

TEST(AsciiTable, NumericRowFormatting)
{
    AsciiTable t({"wl", "avg", "worst"});
    t.addRowNumeric("MEM1", {1.234567, 2.0}, 2);
    const std::string out = t.render();
    EXPECT_NE(out.find("1.23"), std::string::npos);
    EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(AsciiTable, RowArityMismatchPanics)
{
    AsciiTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(AsciiTable, EmptyHeaderIsFatal)
{
    EXPECT_THROW(AsciiTable(std::vector<std::string>{}), FatalError);
}

TEST(AsciiTable, NumHelperPrecision)
{
    EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(AsciiTable::num(1.0, 0), "1");
}

// Regression for the format-truncation sweep (lint rule R3): %.6f of
// 1e300 needs over 300 characters, which used to be silently cut at
// the 64-byte stack buffer — rendering a wrong number. The slow path
// must re-measure and return the full expansion.
TEST(AsciiTable, NumExtremeMagnitudeNotTruncated)
{
    const std::string s = AsciiTable::num(1e300, 6);
    EXPECT_GT(s.size(), 300u);
    EXPECT_EQ(s.substr(s.size() - 7), ".000000");
    // The decimal expansion of a binary double is exact, so parsing
    // it back must reproduce the value bit for bit.
    EXPECT_EQ(std::stod(s), 1e300);

    const std::string neg = AsciiTable::num(-1e308, 2);
    EXPECT_GT(neg.size(), 300u);
    EXPECT_EQ(neg.front(), '-');
    EXPECT_EQ(std::stod(neg), -1e308);
}

TEST(AsciiTable, CountsRowsAndColumns)
{
    AsciiTable t({"a", "b", "c"});
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rows(), 1u);
}

} // namespace
} // namespace fastcap
