/**
 * @file
 * Tests for the worker pool: job execution, batch wait semantics,
 * reuse across batches, exception propagation and shutdown.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace fastcap {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitBlocksUntilBatchFinishes)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            ++done;
        });
    pool.wait();
    EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 10);
    }
}

TEST(ThreadPool, ResultsLandInPreallocatedSlots)
{
    // The sweep-runner pattern: each job writes only its own index.
    const std::size_t n = 64;
    std::vector<int> out(n, -1);
    ThreadPool pool(8);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&out, i] { out[i] = static_cast<int>(i) * 3; });
    pool.wait();
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(ThreadPool, WaitRethrowsFirstJobException)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 4; ++i)
        pool.submit([&ran] { ++ran; });
    pool.submit([] { fatal("job failed on purpose"); });
    EXPECT_THROW(pool.wait(), FatalError);
    // The pool survives a failed batch.
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPool, JobsMaySubmitMoreJobs)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&pool, &count] {
        ++count;
        for (int i = 0; i < 4; ++i)
            pool.submit([&count] { ++count; });
    });
    pool.wait();
    EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.workerCount(), 1u);
    EXPECT_EQ(pool.workerCount(), ThreadPool::hardwareWorkers());
}

TEST(ThreadPool, EmptyJobPanics)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.submit(ThreadPool::Job()), PanicError);
}

TEST(ThreadPool, DestructionDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 20; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): the destructor must still run everything.
    }
    EXPECT_EQ(count.load(), 20);
}

} // namespace
} // namespace fastcap
