/**
 * @file
 * Tests for util/wallclock.hpp — the one sanctioned wall-clock read.
 * The helper backs operator-facing elapsed-time reporting only; the
 * regression here pins the properties the lint waivers rely on:
 * monotonic, finite, and measured in seconds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/wallclock.hpp"

namespace fastcap {
namespace {

TEST(WallClock, MonotonicNonDecreasing)
{
    const double a = wallSeconds();
    const double b = wallSeconds();
    const double c = wallSeconds();
    EXPECT_LE(a, b);
    EXPECT_LE(b, c);
}

TEST(WallClock, FiniteAndPositive)
{
    const double t = wallSeconds();
    EXPECT_TRUE(std::isfinite(t));
    // steady_clock's epoch is typically boot time; whatever the
    // platform chose, a negative reading would break every elapsed
    // computation downstream.
    EXPECT_GE(t, 0.0);
}

TEST(WallClock, DeltaIsSecondsScale)
{
    // A tight loop of a few thousand iterations takes far less than
    // ten seconds on any machine that can build this repo; a unit
    // mix-up (milliseconds, ticks) would blow this bound apart.
    const double t0 = wallSeconds();
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i)
        sink = sink + 1.0;
    const double dt = wallSeconds() - t0;
    EXPECT_GE(dt, 0.0);
    EXPECT_LT(dt, 10.0);
}

} // namespace
} // namespace fastcap
