/**
 * @file
 * Tests for the application table and Table III workload mixes.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/logging.hpp"
#include "workload/spec_table.hpp"

namespace fastcap {
namespace {

namespace wl = workloads;

TEST(SpecTable, AllSixteenWorkloadsExist)
{
    const auto names = wl::workloadNames();
    ASSERT_EQ(names.size(), 16u);
    for (const std::string &name : names) {
        const auto apps = wl::mixApps(name);
        EXPECT_EQ(apps.size(), 4u) << name;
        for (const std::string &app : apps)
            EXPECT_NO_THROW(wl::spec(app)) << app;
    }
}

TEST(SpecTable, TableIIIRowsMatchPaper)
{
    EXPECT_EQ(wl::mixApps("ILP1"),
              (std::vector<std::string>{"vortex", "gcc", "sixtrack",
                                        "mesa"}));
    EXPECT_EQ(wl::mixApps("MEM4"),
              (std::vector<std::string>{"swim", "applu", "sphinx3",
                                        "lucas"}));
    EXPECT_EQ(wl::mixApps("MIX3"),
              (std::vector<std::string>{"equake", "ammp", "sjeng",
                                        "crafty"}));
}

TEST(SpecTable, UnknownNamesAreFatal)
{
    EXPECT_THROW(wl::spec("notanapp"), FatalError);
    EXPECT_THROW(wl::mixApps("ILP9"), FatalError);
    EXPECT_THROW(wl::workloadsOfClass("FOO"), FatalError);
}

TEST(SpecTable, ClassExtraction)
{
    EXPECT_EQ(wl::classOf("MEM3"), "MEM");
    EXPECT_EQ(wl::classOf("MIX1"), "MIX");
    const auto mems = wl::workloadsOfClass("MEM");
    EXPECT_EQ(mems.size(), 4u);
    EXPECT_EQ(mems[0], "MEM1");
}

TEST(SpecTable, ClassMpkiOrderingMatchesPaper)
{
    // Table III: MEM >> MID > ILP in L2 misses per kilo-instruction.
    const auto class_mpki = [](const std::string &cls) {
        double acc = 0.0;
        int n = 0;
        for (const std::string &w : wl::workloadsOfClass(cls)) {
            for (const std::string &a : wl::mixApps(w)) {
                acc += wl::spec(a).averageMpki();
                ++n;
            }
        }
        return acc / n;
    };
    const double ilp = class_mpki("ILP");
    const double mid = class_mpki("MID");
    const double mem = class_mpki("MEM");
    EXPECT_LT(ilp, 1.0);
    EXPECT_GT(mid, ilp * 2.0);
    EXPECT_GT(mem, mid * 3.0);
}

TEST(SpecTable, WpkiBelowMpki)
{
    for (const std::string &name : wl::specNames()) {
        const AppProfile &app = wl::spec(name);
        EXPECT_LT(app.averageWpki(), app.averageMpki()) << name;
        EXPECT_GT(app.averageWpki(), 0.0) << name;
    }
}

TEST(SpecTable, ProfilesHavePhaseVariety)
{
    // Each profile is multi-phase (drives the paper's dynamics).
    for (const std::string &name : wl::specNames()) {
        const AppProfile &app = wl::spec(name);
        EXPECT_GE(app.phases().size(), 3u) << name;
        // Phases differ in MPKI.
        std::set<double> distinct;
        for (const Phase &p : app.phases())
            distinct.insert(p.mpki);
        EXPECT_GE(distinct.size(), 2u) << name;
    }
}

TEST(SpecTable, ActivityWithinUnitRange)
{
    for (const std::string &name : wl::specNames()) {
        for (const Phase &p : wl::spec(name).phases()) {
            EXPECT_GT(p.activity, 0.0) << name;
            EXPECT_LE(p.activity, 1.0) << name;
        }
    }
}

TEST(SpecTable, MixReplicatesNOverFourCopies)
{
    const auto apps16 = wl::mix("MID2", 16);
    ASSERT_EQ(apps16.size(), 16u);
    // Interleaved: positions i, i+4, i+8, i+12 share a name.
    for (int i = 0; i < 4; ++i)
        for (int k = 1; k < 4; ++k)
            EXPECT_EQ(apps16[i].name(), apps16[i + 4 * k].name());

    const auto apps4 = wl::mix("MID2", 4);
    EXPECT_EQ(apps4.size(), 4u);
    std::set<std::string> names;
    for (const auto &a : apps4)
        names.insert(a.name());
    EXPECT_EQ(names.size(), 4u);
}

TEST(SpecTable, MixRejectsBadCoreCounts)
{
    EXPECT_THROW(wl::mix("ILP1", 0), FatalError);
    EXPECT_THROW(wl::mix("ILP1", 6), FatalError);
    EXPECT_THROW(wl::mix("ILP1", -4), FatalError);
}

TEST(SpecTable, PowerVirusIsComputeBoundAndHot)
{
    const AppProfile virus = wl::powerVirus();
    EXPECT_LT(virus.averageMpki(), 0.1);
    for (const Phase &p : virus.phases())
        EXPECT_DOUBLE_EQ(p.activity, 1.0);
}

TEST(SpecTable, MemClassIsMemoryBoundInMixes)
{
    // MEM1's average MPKI is within a factor ~2 of the paper's 18.22
    // (exact match is not required — see docs/DESIGN.md).
    double acc = 0.0;
    for (const std::string &a : wl::mixApps("MEM1"))
        acc += wl::spec(a).averageMpki();
    const double mpki = acc / 4.0;
    EXPECT_GT(mpki, 9.0);
    EXPECT_LT(mpki, 25.0);
}

} // namespace
} // namespace fastcap
