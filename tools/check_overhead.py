#!/usr/bin/env python3
"""Guard the solver and simulator hot paths against perf regressions.

Compares a fresh Google-Benchmark JSON dump (``bench_overhead`` or
``bench_manycore``) against its committed baseline
(``bench/overhead_baseline.json`` / ``bench/manycore_baseline.json``):

1. **Speedup ratios** (machine-portable, the primary gate): for every
   ``BM_<name>Reference`` / ``BM_<name>`` pair present in both files
   — the solver's optimised-vs-reference solves, the simulator's
   sharded-vs-monolithic windows, the fitter's incremental-vs-batch
   refits — the speedup must not fall below ``1/allowed_regression``
   of the baseline speedup. A faster or slower host scales both
   sides, so this catches real hot-path regressions without flaking
   on runner hardware.
2. **Absolute time** (informational unless wildly off): every
   non-reference benchmark must stay under ``absolute_slack`` x
   ``regression`` x the baseline absolute time, a loose bound that
   still catches pathological regressions (e.g. an accidental O(N^2)
   path) on comparable hardware.
3. **Throughput** (simulator tier): benchmarks reporting
   ``items_per_second`` — epochs/sec for the capped-experiment
   benches, windows/sec for the raw DES benches — are printed and
   gated with the same loose absolute bound, so the 1024-core tier's
   simulation throughput is tracked release over release.

Usage:
    check_overhead.py CURRENT.json BASELINE.json [--regression 2.0]
                      [--absolute-slack 10.0]

Exits non-zero on regression; prints a per-benchmark table either way.
"""

import argparse
import json
import sys


def load_times(path):
    """Map benchmark name -> real_time in ns from a gbench JSON."""
    with open(path) as f:
        data = json.load(f)
    unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        times[bench["name"]] = (
            bench["real_time"] * unit_ns[bench.get("time_unit", "ns")]
        )
    return times


def load_throughputs(path):
    """Map benchmark name -> items_per_second, where reported."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        ips = bench.get("items_per_second")
        if ips is not None and ips > 0:
            out[bench["name"]] = ips
    return out


def speedups(times):
    """Map 'Homogeneous/256'-style keys -> reference/optimised ratio."""
    out = {}
    for name, t in times.items():
        if "Reference" not in name:
            continue
        base = name.replace("Reference", "")
        if base in times and times[base] > 0:
            key = base.replace("BM_Solve", "")
            out[key] = t / times[base]
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument(
        "--regression",
        type=float,
        default=2.0,
        help="fail if speedup drops below baseline/REGRESSION "
        "or absolute time grows past baseline*REGRESSION "
        "(default 2.0, the perf-smoke gate)",
    )
    ap.add_argument(
        "--absolute-slack",
        type=float,
        default=10.0,
        help="extra multiplier on the absolute-time bound to absorb "
        "hardware differences between runners (default 10.0)",
    )
    args = ap.parse_args()

    cur = load_times(args.current)
    base = load_times(args.baseline)
    cur_tput = load_throughputs(args.current)
    base_tput = load_throughputs(args.baseline)
    cur_speed = speedups(cur)
    base_speed = speedups(base)

    failures = []
    print(f"{'benchmark':<28} {'baseline':>10} {'current':>10} verdict")
    for key in sorted(base_speed):
        if key not in cur_speed:
            failures.append(f"missing benchmark pair for {key}")
            continue
        floor = base_speed[key] / args.regression
        ok = cur_speed[key] >= floor
        print(
            f"speedup {key:<20} {base_speed[key]:>9.1f}x "
            f"{cur_speed[key]:>9.1f}x "
            f"{'ok' if ok else f'REGRESSED (floor {floor:.1f}x)'}"
        )
        if not ok:
            failures.append(
                f"{key}: speedup {cur_speed[key]:.1f}x below "
                f"{floor:.1f}x (baseline {base_speed[key]:.1f}x)"
            )

    for name in sorted(base):
        if "Reference" in name or name not in cur:
            continue
        bound = base[name] * args.regression * args.absolute_slack
        ok = cur[name] <= bound
        print(
            f"time    {name:<20} {base[name] / 1e3:>9.1f}u "
            f"{cur[name] / 1e3:>9.1f}u "
            f"{'ok' if ok else f'REGRESSED (bound {bound / 1e3:.1f}u)'}"
        )
        if not ok:
            failures.append(
                f"{name}: {cur[name] / 1e3:.1f}us exceeds "
                f"{bound / 1e3:.1f}us"
            )

    for name in sorted(base_tput):
        if "Reference" in name:
            continue
        if name not in cur_tput:
            # A benchmark the baseline tracks but the current run
            # lacks is a gate hole (filter typo, rename), not a pass:
            # the committed baselines contain exactly what CI runs.
            failures.append(f"missing throughput benchmark {name}")
            continue
        # Throughput (epochs/sec, windows/sec): loose floor mirroring
        # the absolute-time bound — absolute rates are host-dependent,
        # so only collapses fail; the printed value is the tracked
        # metric.
        floor = base_tput[name] / (args.regression * args.absolute_slack)
        ok = cur_tput[name] >= floor
        print(
            f"tput    {name:<20} {base_tput[name]:>8.2f}/s "
            f"{cur_tput[name]:>8.2f}/s "
            f"{'ok' if ok else f'REGRESSED (floor {floor:.2f}/s)'}"
        )
        if not ok:
            failures.append(
                f"{name}: {cur_tput[name]:.2f}/s below "
                f"{floor:.2f}/s (baseline {base_tput[name]:.2f}/s)"
            )

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nOK: hot paths within perf envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
