/**
 * @file
 * fastcap_cluster — run a rack-scale hierarchical capping experiment
 * from the command line.
 *
 *   fastcap_cluster --machines 8 --cores 64 --budget 0.5 \
 *       --trace "gen:flash,rate=200,flash-start=0.02" --max-epochs 40
 *
 * A Cluster instantiates M identical machines (each a full FastCap
 * capping stack), re-divides the rack budget across them every epoch
 * from previous-epoch demand, and dispatches a cluster-wide job
 * trace onto the least-loaded machine. `--fail` kills machines
 * mid-run; `--csv` emits the per-epoch rack time series, which is
 * byte-identical for every `--machine-threads` value (the CI cmp
 * gate runs 1 vs N).
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "scenario/budget_schedule.hpp"
#include "util/args.hpp"
#include "util/logging.hpp"

using namespace fastcap;

namespace {

/**
 * Parse a failure schedule: `;`-separated `MACHINE@FAIL[:RESTORE]`
 * entries, e.g. "2@5:12;7@9" (machine 2 dies at epoch 5 and returns
 * at 12; machine 7 dies at 9 for good).
 */
std::vector<MachineFailure>
parseFailures(const std::string &spec)
{
    std::vector<MachineFailure> out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(';', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;
        MachineFailure f;
        char *rest = nullptr;
        f.machine =
            static_cast<int>(std::strtol(item.c_str(), &rest, 10));
        if (rest == item.c_str() || *rest != '@')
            fatal("--fail: expected MACHINE@FAIL[:RESTORE], got '%s'",
                  item.c_str());
        const char *p = rest + 1;
        f.failEpoch = static_cast<int>(std::strtol(p, &rest, 10));
        if (rest == p)
            fatal("--fail: missing failure epoch in '%s'",
                  item.c_str());
        if (*rest == ':') {
            p = rest + 1;
            f.restoreEpoch =
                static_cast<int>(std::strtol(p, &rest, 10));
            if (rest == p)
                fatal("--fail: missing restore epoch in '%s'",
                      item.c_str());
        }
        if (*rest != '\0')
            fatal("--fail: trailing garbage in '%s'", item.c_str());
        out.push_back(f);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("fastcap_cluster",
                   "rack-scale hierarchical power capping");
    args.addInt("machines", 4, "machines in the rack");
    args.addInt("cores", 16, "cores per machine (multiple of 4)");
    args.addString("workload", "idle",
                   "initial per-core mix on every machine");
    args.addString("policy", "FastCap",
                   "per-machine capping policy (see fastcap_sim)");
    args.addDouble("budget", 0.6,
                   "rack budget as fraction of installed peak");
    args.addString("rack-schedule", "",
                   "time-varying rack budget, BudgetSchedule syntax "
                   "(e.g. 'step@0:0.8;step@0.05:0.4')");
    args.addString("trace", "",
                   "cluster-wide job trace: file, '-' (stdin) or "
                   "gen:KIND,key=value,...");
    args.addInt("max-epochs", 20, "rack epochs to simulate");
    args.addInt("machine-threads", 1,
                "threads machine epochs fan out over (0 = hardware); "
                "output is byte-identical for every value");
    args.addInt("shards", 0,
                "per-machine engine shards (0 = auto)");
    args.addInt("shard-threads", 1,
                "per-machine engine threads (1 avoids nesting)");
    args.addDouble("floor", 0.05,
                   "arbiter floor: guaranteed peak share per machine");
    args.addString("fail", "",
                   "failure schedule: MACHINE@FAIL[:RESTORE];...");
    args.addInt("seed", 0, "base seed (0 = default)");
    args.addString("csv", "",
                   "write the per-epoch rack CSV here ('-' = stdout)");
    args.addFlag("telemetry",
                 "enable the metrics registry (observe-only: result "
                 "output is byte-identical either way)");
    args.addString("trace-out", "",
                   "write a Chrome trace_event JSON of the rack run "
                   "here (implies --telemetry)");
    args.addString("introspect", "",
                   "after the run, print metrics under this path, "
                   "e.g. /cluster/arbiter ('/' = everything; implies "
                   "--telemetry)");
    args.addString("log-level", "",
                   "log spec LEVEL[,module=LEVEL]... with levels "
                   "silent|warn|inform|debug");
    if (!args.parse(argc, argv))
        return 1;

    try {
        if (!args.getString("log-level").empty())
            Logger::global().configure(args.getString("log-level"));
        const std::string trace_out = args.getString("trace-out");
        const std::string introspect = args.getString("introspect");
        telemetry::setEnabled(args.getFlag("telemetry") ||
                              !trace_out.empty() ||
                              !introspect.empty());
        telemetry::Tracer tracer;

        ClusterConfig cfg;
        cfg.machines = static_cast<int>(args.getInt("machines"));
        cfg.machine = SimConfig::defaultConfig(
            static_cast<int>(args.getInt("cores")));
        cfg.workload = args.getString("workload");
        cfg.policy = args.getString("policy");
        cfg.rackBudgetFraction = args.getDouble("budget");
        if (!args.getString("rack-schedule").empty())
            cfg.rackSchedule =
                BudgetSchedule::parse(args.getString("rack-schedule"));
        cfg.trace = args.getString("trace");
        cfg.maxEpochs = static_cast<int>(args.getInt("max-epochs"));
        cfg.machineThreads =
            static_cast<int>(args.getInt("machine-threads"));
        cfg.shards = static_cast<int>(args.getInt("shards"));
        cfg.shardThreads =
            static_cast<int>(args.getInt("shard-threads"));
        cfg.floorFraction = args.getDouble("floor");
        cfg.failures = parseFailures(args.getString("fail"));
        if (args.getInt("seed") != 0)
            cfg.seed =
                static_cast<std::uint64_t>(args.getInt("seed"));
        if (!trace_out.empty())
            cfg.tracer = &tracer;

        Cluster cluster(cfg);
        const ClusterResult res = cluster.run();

        const ClusterEpochRecord &last = res.epochs.back();
        std::printf("rack: %d machines x %d cores | budget %.0f%% of "
                    "%.1f W installed\n",
                    cfg.machines, cfg.machine.numCores,
                    100.0 * cfg.rackBudgetFraction, res.installedPeak);
        std::printf("epochs %zu | final: %.1f W of %.1f W usable, "
                    "%d machines alive, %d cores busy\n",
                    res.epochs.size(), last.totalPower,
                    last.usableBudget, last.aliveMachines,
                    last.busyCores);
        std::printf("jobs: %zu dispatched, %zu completed, %zu shed, "
                    "%zu lost to failures\n",
                    res.dispatched, res.completed, res.dropped,
                    res.lost);

        const std::string csv = args.getString("csv");
        if (!csv.empty()) {
            if (csv == "-") {
                std::printf("\n");
                res.writeCsv(stdout);
            } else {
                std::FILE *f = std::fopen(csv.c_str(), "w");
                if (!f)
                    fatal("cannot open '%s' for writing", csv.c_str());
                res.writeCsv(f);
                std::fclose(f);
                inform("wrote %s", csv.c_str());
            }
        }

        if (!trace_out.empty())
            tracer.writeJson(trace_out);
        if (!introspect.empty())
            for (const auto &kv :
                 telemetry::Registry::global().query(
                     introspect == "/" ? "" : introspect))
                std::printf("%s %s\n", kv.first.c_str(),
                            kv.second.c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fastcap_cluster: %s\n", e.what());
        return 1;
    }
}
