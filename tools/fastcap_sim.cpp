/**
 * @file
 * fastcap_sim — run one power-capping experiment from the command
 * line.
 *
 *   fastcap_sim --workload MIX3 --policy FastCap --cores 16 \
 *               --budget 0.6 --instructions 5e7 --epoch-csv
 *
 * Prints a run summary; `--epoch-csv` adds per-epoch CSV rows
 * (power, memory level, budget) for plotting; `--compare` also runs
 * the uncapped baseline and reports normalized per-application CPI.
 * `--trace` replays a job trace (a file, '-' for stdin, or a
 * gen:KIND,... generator spec) onto the cores:
 *
 *   fastcap_tracegen --kind poisson --rate 500 | \
 *       fastcap_sim --workload idle --trace - --max-epochs 50
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "policies/registry.hpp"
#include "scenario/scenario.hpp"
#include "util/args.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "workload/spec_table.hpp"

using namespace fastcap;

int
main(int argc, char **argv)
{
    ArgParser args("fastcap_sim",
                   "FastCap power-capping experiment driver");
    args.addString("workload", "MIX3",
                   "Table III workload (ILP1..MIX4), or 'idle' for "
                   "an empty machine (trace replays)");
    args.addString("policy", "FastCap",
                   "FastCap | CPU-only | Uncapped | Freq-Par | "
                   "Eql-Pwr | Eql-Freq | MaxBIPS");
    args.addInt("cores", 16, "core count (multiple of 4)");
    args.addDouble("budget", 0.6, "power budget as fraction of peak");
    args.addDouble("instructions", 50e6,
                   "instructions per application");
    args.addDouble("epoch-ms", 5.0, "epoch length in milliseconds");
    args.addInt("controllers", 1, "memory controllers");
    args.addDouble("skew", 0.0,
                   "hot-controller access fraction (0 = uniform)");
    args.addFlag("ooo", "idealized out-of-order cores");
    args.addInt("shards", 0,
                "simulation-engine shards (0 = auto: monolithic "
                "<= 64 cores, sharded above)");
    args.addInt("shard-threads", 0,
                "sharded-engine worker threads (0 = hardware)");
    args.addString("scenario", "",
                   "inline time-varying scenario, e.g. "
                   "'name=drop|budget=step@0:0.9;step@0.05:0.5'");
    args.addInt("seed", 0, "simulation seed (0 = default)");
    args.addInt("max-epochs", 1000,
                "hard stop in epochs (bounds trace replays whose "
                "apps never complete)");
    args.addString("trace", "",
                   "replay a job trace: a file path, '-' (stdin), or "
                   "gen:KIND,key=value,... for a synthetic stream");
    args.addFlag("epoch-csv", "print per-epoch CSV rows");
    args.addFlag("compare", "also run the uncapped baseline and "
                            "report normalized CPI");
    args.addFlag("telemetry",
                 "enable the metrics registry (observe-only: result "
                 "output is byte-identical either way)");
    args.addString("trace-out", "",
                   "write a Chrome trace_event JSON of the run here "
                   "(implies --telemetry)");
    args.addString("introspect", "",
                   "after the run, print metrics under this path, "
                   "e.g. /solver or /machine/0/core/0/freq "
                   "('/' = everything; implies --telemetry)");
    args.addString("log-level", "",
                   "log spec LEVEL[,module=LEVEL]... with levels "
                   "silent|warn|inform|debug");
    if (!args.parse(argc, argv))
        return 1;

    try {
        if (!args.getString("log-level").empty())
            Logger::global().configure(args.getString("log-level"));
        const std::string trace_out = args.getString("trace-out");
        const std::string introspect = args.getString("introspect");
        telemetry::setEnabled(args.getFlag("telemetry") ||
                              !trace_out.empty() ||
                              !introspect.empty());
        telemetry::Tracer tracer;

        SimConfig scfg = SimConfig::defaultConfig(
            static_cast<int>(args.getInt("cores")));
        scfg.epochLength = args.getDouble("epoch-ms") * 1e-3;
        if (args.getInt("controllers") > 1) {
            const int k = static_cast<int>(args.getInt("controllers"));
            scfg.numControllers = k;
            scfg.banksPerController =
                std::max(1, scfg.banksPerController / k);
            scfg.busBurstCycles *= k; // one channel share each
        }
        if (args.getDouble("skew") > 0.0) {
            scfg.interleave = InterleaveMode::Skewed;
            scfg.skewHotFraction = args.getDouble("skew");
        }
        if (args.getFlag("ooo"))
            scfg.execMode = ExecMode::OutOfOrder;
        if (args.getInt("seed") != 0)
            scfg.seed = static_cast<std::uint64_t>(args.getInt("seed"));
        scfg.validate();

        ExperimentConfig ecfg;
        ecfg.budgetFraction = args.getDouble("budget");
        ecfg.targetInstructions = args.getDouble("instructions");
        ecfg.maxEpochs = static_cast<int>(args.getInt("max-epochs"));
        ecfg.shards = static_cast<int>(args.getInt("shards"));
        ecfg.shardThreads =
            static_cast<int>(args.getInt("shard-threads"));
        if (!args.getString("scenario").empty())
            ecfg.scenario =
                Scenario::parse(args.getString("scenario"));
        // The flag wins over any trace= field inside --scenario.
        if (!args.getString("trace").empty())
            ecfg.scenario.trace = args.getString("trace");
        if (!trace_out.empty())
            ecfg.tracer = &tracer;

        const std::string workload = args.getString("workload");
        const std::string policy = args.getString("policy");

        const ExperimentResult res =
            runWorkload(workload, policy, ecfg, scfg);

        std::printf("workload %s | policy %s | %d cores%s | budget "
                    "%.0f%% of %.1f W\n",
                    workload.c_str(), policy.c_str(), scfg.numCores,
                    scfg.execMode == ExecMode::OutOfOrder ? " (OoO)"
                                                          : "",
                    100.0 * res.budgetFraction, res.peakPower);
        std::printf("epochs %zu | avg power %.1f W (%.3f of peak) | "
                    "max epoch %.1f W | all apps done: %s\n",
                    res.epochs.size(), res.averagePower(),
                    res.averagePowerFraction(), res.maxEpochPower(),
                    res.allCompleted() ? "yes" : "NO");

        if (res.traceDriven)
            std::printf("trace %s | jobs: %zu arrived, %zu placed, "
                        "%zu completed, %zu shed | peak: %zu pending, "
                        "%zu cores busy\n",
                        ecfg.scenario.trace.c_str(),
                        res.trace.arrivals, res.trace.placed,
                        res.trace.completed, res.trace.dropped,
                        res.trace.peakPending, res.trace.peakRunning);

        if (args.getFlag("epoch-csv")) {
            std::printf("\nepoch,core_w,mem_w,total_w,budget_w,"
                        "mem_level,trace_dropped,trace_pending\n");
            for (const EpochRecord &e : res.epochs)
                std::printf("%d,%.2f,%.2f,%.2f,%.2f,%zu,%zu,%zu\n",
                            e.epoch, e.corePower, e.memPower,
                            e.totalPower, e.budget, e.memFreqIdx,
                            e.traceDropped, e.tracePending);
        }

        if (args.getFlag("compare") && policy != "Uncapped") {
            const ExperimentResult base =
                runWorkload(workload, "Uncapped", ecfg, scfg);
            const PerfComparison cmp = comparePerformance(res, base);
            std::printf("\nnormalized CPI vs uncapped: avg %.3f, "
                        "worst %.3f (worst/avg %.3f)\n",
                        cmp.average, cmp.worst, cmp.unfairness);
            AsciiTable t({"core", "app", "norm CPI"});
            for (std::size_t i = 0; i < res.apps.size(); ++i)
                t.addRow({std::to_string(res.apps[i].core),
                          res.apps[i].app,
                          AsciiTable::num(cmp.perApp[i], 3)});
            t.print();
        }

        if (!trace_out.empty())
            tracer.writeJson(trace_out);
        if (!introspect.empty())
            for (const auto &kv :
                 telemetry::Registry::global().query(
                     introspect == "/" ? "" : introspect))
                std::printf("%s %s\n", kv.first.c_str(),
                            kv.second.c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fastcap_sim: %s\n", e.what());
        return 1;
    }
}
