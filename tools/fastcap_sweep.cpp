/**
 * @file
 * fastcap_sweep — run a grid of power-capping experiments in
 * parallel.
 *
 *   fastcap_sweep --workloads MIX1,MIX3 --policies FastCap,Eql-Pwr \
 *                 --budgets 0.5,0.6,0.7 --cores 16 --threads 8 \
 *                 --csv sweep.csv
 *
 * The grid is the cross-product of every list-valued flag (plus
 * --replicates as a seed dimension). Results are deterministic for a
 * given grid and --seed: each run's simulation seed is derived from
 * (seed, run index) with SplitMix64, so the emitted CSV/JSON is
 * byte-identical regardless of --threads.
 *
 * A grid can also be loaded from a small spec file (--spec) holding
 * `key = value` lines with the same keys as the flags, e.g.:
 *
 *   workloads = ILP1,MEM2
 *   policies  = FastCap,Uncapped
 *   budgets   = 0.6
 *   cores     = 16,32
 *
 * Explicit flags override spec-file values.
 *
 * Time-varying scenarios (budget schedules and job churn) form an
 * optional grid axis:
 *
 *   --scenario "name=drop|budget=step@0:0.9;step@0.05:0.5"
 *   --scenario-file scenarios.txt   # `name = spec` lines
 *
 * With a scenario axis the CSV/JSON rows gain a `scenario` column;
 * without one the output is byte-identical to scenario-less builds.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "policies/registry.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/registry.hpp"
#include "util/args.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "workload/spec_table.hpp"

using namespace fastcap;

namespace {

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        // Trim surrounding spaces so "a, b" parses as {"a", "b"}.
        const auto first = item.find_first_not_of(" \t");
        const auto last = item.find_last_not_of(" \t");
        if (first != std::string::npos)
            out.push_back(item.substr(first, last - first + 1));
    }
    return out;
}

std::vector<double>
splitDoubles(const std::string &csv, const char *what)
{
    std::vector<double> out;
    for (const std::string &s : splitList(csv)) {
        char *end = nullptr;
        const double v = std::strtod(s.c_str(), &end);
        if (end == s.c_str() || *end != '\0')
            fatal("bad %s value '%s'", what, s.c_str());
        out.push_back(v);
    }
    return out;
}

std::vector<int>
splitInts(const std::string &csv, const char *what)
{
    std::vector<int> out;
    for (const std::string &s : splitList(csv)) {
        char *end = nullptr;
        const long v = std::strtol(s.c_str(), &end, 10);
        // Strict: "16.9" or "1e2" must not silently truncate.
        if (end == s.c_str() || *end != '\0')
            fatal("bad %s value '%s' (expected an integer)", what,
                  s.c_str());
        out.push_back(static_cast<int>(v));
    }
    return out;
}

/** Single numeric value; empty input is a clean user error. */
double
oneDouble(const std::string &s, const char *what)
{
    const std::vector<double> v = splitDoubles(s, what);
    if (v.size() != 1)
        fatal("expected one %s value (got '%s')", what, s.c_str());
    return v.front();
}

/** Single integer value; empty input is a clean user error. */
int
oneInt(const std::string &s, const char *what)
{
    const std::vector<int> v = splitInts(s, what);
    if (v.size() != 1)
        fatal("expected one %s value (got '%s')", what, s.c_str());
    return v.front();
}

/** "true"/"false"/"1"/"0" for spec-file booleans. */
bool
parseBool(const std::string &s, const char *what)
{
    if (s == "true" || s == "1")
        return true;
    if (s == "false" || s == "0")
        return false;
    fatal("bad %s value '%s' (expected true/false)", what, s.c_str());
}

/** Parse `key = value` lines; '#' starts a comment. */
std::map<std::string, std::string>
readSpecFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open spec file '%s'",
              path.c_str());
    std::map<std::string, std::string> kv;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            if (line.find_first_not_of(" \t\r") != std::string::npos)
                fatal("%s:%d: expected 'key = value'",
                      path.c_str(), lineno);
            continue;
        }
        const std::string key = trimmed(line.substr(0, eq));
        const std::string value = trimmed(line.substr(eq + 1));
        if (key.empty())
            fatal("%s:%d: empty key", path.c_str(),
                  lineno);
        kv[key] = value;
    }
    return kv;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("fastcap_sweep",
                   "parallel grid sweep over capping experiments");
    args.addString("workloads", "",
                   "comma-separated Table III workloads "
                   "(default: all 16)");
    args.addString("classes", "",
                   "workload classes (ILP,MID,MEM,MIX); expands to "
                   "their workloads");
    args.addString("policies", "FastCap", "comma-separated policies");
    args.addString("budgets", "0.6",
                   "comma-separated budget fractions of peak");
    args.addString("cores", "16", "comma-separated core counts");
    args.addString("replicates", "1",
                   "runs per grid point (fresh derived seed each)");
    args.addString("instructions", "30e6",
                   "instructions per application");
    args.addString("max-epochs", "2000", "epoch cap per run");
    args.addString("seed", "0",
                   "base seed for per-run seed derivation "
                   "(0 = default)");
    args.addString("spec", "",
                   "grid spec file with 'key = value' lines "
                   "(flags override)");
    args.addString("scenario", "",
                   "inline time-varying scenario, e.g. "
                   "'name=drop|budget=step@0:0.9;step@0.05:0.5'");
    args.addString("scenario-file", "",
                   "scenario axis file with 'name = spec' lines");
    args.addFlag("paired-seeds",
                 "runs differing only in policy/budget share a seed "
                 "(for normalized comparisons)");
    args.addFlag("reference-solver",
                 "run the per-core reference solver instead of the "
                 "equivalence-class hot path (validation; results "
                 "are bit-identical either way)");
    args.addFlag("exhaustive-mem-search",
                 "scan every memory level instead of Algorithm 1's "
                 "binary search (validation)");
    args.addString("shards", "0",
                   "simulation-engine shards per run (0 = auto: "
                   "monolithic <= 64 cores, sharded above; output is "
                   "byte-identical across all values >= 1)");
    args.addString("shard-threads", "1",
                   "sharded-engine workers per run (0 = hardware; "
                   "default 1 to avoid nesting inside --threads)");
    args.addInt("threads", 0, "worker threads (0 = hardware)");
    args.addString("csv", "", "write run CSV to this file "
                              "(default: stdout)");
    args.addString("json", "", "also write run JSON to this file");
    args.addFlag("telemetry",
                 "enable the metrics registry (observe-only: CSV/JSON "
                 "output is byte-identical either way)");
    args.addString("log-level", "",
                   "log spec LEVEL[,module=LEVEL]... with levels "
                   "silent|warn|inform|debug (default inform, so the "
                   "run summary stays visible)");
    if (!args.parse(argc, argv))
        return 1;

    try {
        // The sweep's one-line run summary has always been printed
        // unconditionally; defaulting to inform keeps it visible now
        // that it routes through the logger.
        if (args.getString("log-level").empty())
            Logger::global().level(LogLevel::Inform);
        else
            Logger::global().configure(args.getString("log-level"));
        telemetry::setEnabled(args.getFlag("telemetry"));
        std::map<std::string, std::string> spec;
        if (!args.getString("spec").empty())
            spec = readSpecFile(args.getString("spec"));
        for (const auto &kv : spec) {
            static const char *known[] = {
                "workloads", "classes",      "policies",
                "budgets",   "cores",        "replicates",
                "instructions", "max-epochs", "seed",
                "paired-seeds", "scenario",   "scenario-file",
                "reference-solver", "exhaustive-mem-search",
                "shards", "shard-threads"};
            bool ok = false;
            for (const char *k : known)
                ok = ok || kv.first == k;
            if (!ok)
                fatal("unknown spec key '%s'",
                      kv.first.c_str());
        }
        // Flag wins over spec file; spec wins over the default.
        auto value = [&](const char *name) -> std::string {
            if (!args.provided(name) && spec.count(name))
                return spec.at(name);
            return args.getString(name);
        };

        SweepGrid grid;
        grid.configs =
            SweepGrid::configsForCores(splitInts(value("cores"),
                                                 "cores"));
        // Merge classes and explicit workloads, keeping the first
        // occurrence of each name (a workload may appear in both).
        auto addWorkload = [&grid](const std::string &wl) {
            for (const std::string &have : grid.workloads)
                if (have == wl)
                    return;
            grid.workloads.push_back(wl);
        };
        for (const std::string &cls :
             splitList(value("classes")))
            for (const std::string &wl :
                 workloads::workloadsOfClass(cls))
                addWorkload(wl);
        for (const std::string &wl : splitList(value("workloads")))
            addWorkload(wl);
        if (grid.workloads.empty())
            grid.workloads = workloads::workloadNames();
        grid.policies = splitList(value("policies"));
        grid.budgetFractions = splitDoubles(value("budgets"),
                                            "budget");
        grid.replicates = oneInt(value("replicates"), "replicates");
        grid.targetInstructions =
            oneDouble(value("instructions"), "instructions");
        grid.maxEpochs = oneInt(value("max-epochs"), "max-epochs");
        // Full 64-bit seeds, decimal or 0x-hex. Reject negatives
        // rather than letting strtoull wrap them around silently.
        const std::string seed_str = value("seed");
        char *end = nullptr;
        const std::uint64_t seed =
            std::strtoull(seed_str.c_str(), &end, 0);
        if (end == seed_str.c_str() || *end != '\0' ||
            seed_str.find('-') != std::string::npos)
            fatal("bad seed '%s'", seed_str.c_str());
        if (seed != 0)
            grid.baseSeed = seed;
        // The flag form is boolean-valued, the spec form true/false.
        const auto boolOption = [&](const char *name) {
            return args.getFlag(name) ||
                   (spec.count(name) &&
                    parseBool(spec.at(name), name));
        };
        grid.pairSeedsAcrossPolicies = boolOption("paired-seeds");
        grid.solver.referenceImpl = boolOption("reference-solver");
        grid.solver.exhaustiveMemSearch =
            boolOption("exhaustive-mem-search");
        grid.shards = oneInt(value("shards"), "shards");
        grid.shardThreads =
            oneInt(value("shard-threads"), "shard-threads");

        // Scenario axis: a file of named scenarios, or one inline
        // spec. Omitting both keeps the implicit constant scenario
        // (and the historical CSV format). The two keys name one
        // axis, so flags override spec-file values across *both*: an
        // explicit --scenario replaces a spec 'scenario-file' line
        // and vice versa; they conflict only at the same level.
        std::string scenario_file;
        std::string scenario_inline;
        if (args.provided("scenario") ||
            args.provided("scenario-file")) {
            scenario_inline = args.getString("scenario");
            scenario_file = args.getString("scenario-file");
        } else {
            if (spec.count("scenario"))
                scenario_inline = spec.at("scenario");
            if (spec.count("scenario-file"))
                scenario_file = spec.at("scenario-file");
        }
        if (!scenario_file.empty() && !scenario_inline.empty())
            fatal("scenario and scenario-file are exclusive");
        if (!scenario_file.empty())
            grid.scenarios = Scenario::loadFile(scenario_file);
        else if (!scenario_inline.empty())
            grid.scenarios = {Scenario::parse(scenario_inline)};

        SweepRunner runner(grid,
                           static_cast<int>(args.getInt("threads")));
        const SweepResult result = runner.run();

        logkv(LogLevel::Inform, "sweep", "done",
              {{"runs",
                static_cast<long long>(result.runs.size())},
               {"threads", result.threads},
               {"wall_s", result.wallSeconds},
               {"runs_per_s",
                result.wallSeconds > 0.0
                    ? static_cast<double>(result.runs.size()) /
                          result.wallSeconds
                    : 0.0}});

        if (args.getString("csv").empty()) {
            result.writeCsv(stdout);
        } else {
            std::FILE *out =
                std::fopen(args.getString("csv").c_str(), "w");
            if (!out)
                fatal("cannot write '%s'",
                      args.getString("csv").c_str());
            result.writeCsv(out);
            std::fclose(out);
        }
        if (!args.getString("json").empty()) {
            std::FILE *out =
                std::fopen(args.getString("json").c_str(), "w");
            if (!out)
                fatal("cannot write '%s'",
                      args.getString("json").c_str());
            result.writeJson(out);
            std::fclose(out);
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fastcap_sweep: %s\n", e.what());
        return 1;
    }
}
