/**
 * @file
 * fastcap_tracegen — generate synthetic job traces.
 *
 *   fastcap_tracegen --kind poisson --rate 500 --horizon 0.2 \
 *                    --seed 7 --out poisson.trace
 *   fastcap_tracegen --gen "mmpp,rate=100,burst-factor=10" | \
 *                    fastcap_sim --workload idle --trace -
 *
 * Traces are reproducible bit-for-bit from their parameters and
 * seed; every file embeds the spec it was generated from, so a
 * committed trace documents its own regeneration recipe. The same
 * specs can skip the file entirely via `--trace gen:...` on
 * fastcap_sim / fastcap_sweep.
 */

#include <cstdio>
#include <sstream>
#include <string>

#include "trace/trace_generator.hpp"
#include "util/args.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace fastcap;

namespace {

/** Spec from individual flags; only provided ones override. */
TraceGenSpec
specFromFlags(const ArgParser &args)
{
    TraceGenSpec g;
    g.kind = args.getString("kind");
    g.horizon = args.getDouble("horizon");
    g.rate = args.getDouble("rate");
    g.meanDuration = args.getDouble("mean-duration");
    g.maxCores = static_cast<int>(args.getInt("max-cores"));
    g.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    g.maxEvents = static_cast<std::size_t>(args.getInt("events"));
    g.burstFactor = args.getDouble("burst-factor");
    g.meanBurst = args.getDouble("mean-burst");
    g.meanQuiet = args.getDouble("mean-quiet");
    g.amplitude = args.getDouble("amplitude");
    g.period = args.getDouble("period");
    g.flashStart = args.getDouble("flash-start");
    g.flashDuration = args.getDouble("flash-duration");
    g.flashFactor = args.getDouble("flash-factor");
    g.batchMean = args.getDouble("batch-mean");
    if (!args.getString("apps").empty()) {
        g.apps.clear();
        std::stringstream ss(args.getString("apps"));
        std::string app;
        while (std::getline(ss, app, ','))
            g.apps.push_back(trimmed(app));
    }
    return g;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("fastcap_tracegen",
                   "synthetic job-trace generator (see docs/TRACES.md)");
    args.addString("gen", "",
                   "full generator spec 'KIND,key=value,...'; "
                   "overrides the individual flags below");
    args.addString("kind", "poisson",
                   "poisson | mmpp | sine | flash | batch");
    args.addDouble("horizon", 1.0, "stop past this arrival time (s)");
    args.addDouble("rate", 100.0, "baseline arrival rate (jobs/s)");
    args.addString("apps", "",
                   "comma-separated app names drawn uniformly "
                   "(default: the MIX1 four)");
    args.addDouble("mean-duration", 0.02,
                   "mean exponential service demand (s)");
    args.addInt("max-cores", 1,
                "per-job core demand drawn from [1, N]");
    args.addInt("seed", 1, "generator seed");
    args.addInt("events", 0, "hard event cap (0 = horizon only)");
    args.addDouble("burst-factor", 8.0, "mmpp: burst-state rate gain");
    args.addDouble("mean-burst", 0.02, "mmpp: mean burst dwell (s)");
    args.addDouble("mean-quiet", 0.1, "mmpp: mean quiet dwell (s)");
    args.addDouble("amplitude", 0.8, "sine: relative swing in [0,1)");
    args.addDouble("period", 0.25, "sine: cycle length (s)");
    args.addDouble("flash-start", 0.4, "flash: window start (s)");
    args.addDouble("flash-duration", 0.05, "flash: window length (s)");
    args.addDouble("flash-factor", 20.0, "flash: rate gain inside");
    args.addDouble("batch-mean", 3.0, "batch: mean jobs per batch");
    args.addString("out", "", "output path (default: stdout)");
    args.addString("log-level", "",
                   "log spec LEVEL[,module=LEVEL]... with levels "
                   "silent|warn|inform|debug");
    if (!args.parse(argc, argv))
        return 1;

    try {
        if (!args.getString("log-level").empty())
            Logger::global().configure(args.getString("log-level"));
        TraceGenSpec spec = args.getString("gen").empty()
            ? specFromFlags(args)
            : TraceGenSpec::parse(args.getString("gen"));
        auto src = makeTraceGenerator(spec);

        std::FILE *out = stdout;
        const std::string path = args.getString("out");
        if (!path.empty()) {
            out = std::fopen(path.c_str(), "w");
            if (out == nullptr)
                fatal("fastcap_tracegen: cannot write '%s'",
                      path.c_str());
        }
        const std::size_t n = writeTrace(
            out, *src, "fastcap_tracegen --gen \"" + spec.toString() +
                "\"");
        if (out != stdout) {
            std::fclose(out);
            std::fprintf(stderr, "fastcap_tracegen: wrote %zu events "
                         "to %s\n", n, path.c_str());
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fastcap_tracegen: %s\n", e.what());
        return 1;
    }
}
