#!/usr/bin/env python3
"""fastcap_lint: project-specific static analysis for the FastCap tree.

Every headline claim this reproduction makes rests on source-level
determinism invariants (fixed merge order, SplitMix64-only randomness,
no wall clock in the simulation, checked format truncation). This pass
moves those invariants from reviewer discipline into tooling. It is a
real tokenizer, not a grep: it understands comments, string/char
literals, raw strings, digit separators, preprocessor lines and brace
scopes, so `"assert("` inside a string or `rand()` inside a comment
never fire.

Rules (catalog and rationale in docs/STATIC_ANALYSIS.md):

  R1  order-insensitive : no unordered_{map,set,multimap,multiset}
      declaration, range-iteration, or begin()/end() handoff in
      result-affecting code (src/core, src/sim, src/harness,
      src/trace, src/policies) without a waiver proving the use
      cannot leak hash-iteration order into results.
  R2  entropy/wall-clock: no rand()/srand()/std::random_device/
      std::mt19937/... and no std::chrono::*_clock / time() /
      clock_gettime()/... outside src/util and tools/. Randomness
      comes from util/rng (SplitMix64 streams); time from the sim
      clock.
  R3  format-checked    : sprintf/vsprintf are forbidden outright;
      every snprintf/vsnprintf return value must be consumed (the
      PR 4 cache-key-truncation bug class). `(void)` discards count
      as unchecked.
  R4  float-ok          : no `float` type or `f`-suffixed floating
      literal in result-affecting code; solver/model/merge paths are
      double-only by contract.
  R5  raw-assert        : no raw assert()/<cassert> anywhere in src/;
      use FASTCAP_ASSERT (panics, active in release) or fatal().
  W0  waiver syntax     : malformed waivers (unknown tag, missing
      reason) are themselves findings, so a typo cannot silently
      disable a rule.

Waiver syntax, on the offending line, anywhere inside the offending
statement, or on an immediately preceding comment-only line:

    // fastcap-lint: <tag>(<reason>)
    // fastcap-lint: order-insensitive(keyed dedupe, never iterated)

Multiple waivers may be comma-separated after one `fastcap-lint:`.
The reason is mandatory.

Exit status: 0 clean, 1 findings, 2 usage/self-test harness error.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------
# Rule metadata
# --------------------------------------------------------------------

RULES = {
    "R1": ("order-insensitive",
           "unordered container in result-affecting code"),
    "R2": ("entropy | wall-clock",
           "ambient randomness or wall clock outside util/tools"),
    "R3": ("format-checked",
           "unchecked snprintf return / banned sprintf"),
    "R4": ("float-ok",
           "float in double-only solver/model/merge path"),
    "R5": ("raw-assert",
           "raw assert; use FASTCAP_ASSERT or fatal()"),
    "W0": (None, "malformed fastcap-lint waiver"),
}

# Waiver tag -> rule it can silence.
WAIVER_TAGS = {
    "order-insensitive": "R1",
    "entropy": "R2",
    "wall-clock": "R2",
    "format-checked": "R3",
    "float-ok": "R4",
    "raw-assert": "R5",
}

# Directories (relative to repo root, forward slashes) whose code can
# feed experiment results: hash order, float rounding, or ambient
# entropy here can break the bit-identity contract.
RESULT_DIRS = ("src/core", "src/sim", "src/harness", "src/trace",
               "src/policies", "src/cluster")

UNORDERED_TYPES = frozenset({
    "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset",
})

# R2: banned qualified names (token sequences joined with '::').
BANNED_QUALIFIED = {
    "std::random_device": "entropy",
    "std::mt19937": "entropy",
    "std::mt19937_64": "entropy",
    "std::default_random_engine": "entropy",
    "std::minstd_rand": "entropy",
    "std::minstd_rand0": "entropy",
    "std::knuth_b": "entropy",
    "std::chrono::steady_clock": "wall-clock",
    "std::chrono::system_clock": "wall-clock",
    "std::chrono::high_resolution_clock": "wall-clock",
}
# Unqualified spellings (after `using namespace std`, or C calls).
BANNED_BARE_TYPES = {
    "random_device": "entropy",
    "mt19937": "entropy",
    "mt19937_64": "entropy",
    "steady_clock": "wall-clock",
    "system_clock": "wall-clock",
    "high_resolution_clock": "wall-clock",
}
# Bare identifiers that are banned only as *calls* (`name(`), and only
# when not a member/qualified access (`x.time()` is fine).
BANNED_CALLS = {
    "rand": "entropy",
    "srand": "entropy",
    "random": "entropy",
    "drand48": "entropy",
    "time": "wall-clock",
    "clock": "wall-clock",
    "gettimeofday": "wall-clock",
    "clock_gettime": "wall-clock",
    "timespec_get": "wall-clock",
}

FORMAT_BANNED = frozenset({"sprintf", "vsprintf"})
FORMAT_CHECKED = frozenset({"snprintf", "vsnprintf"})

# Matches a floating literal with an f/F suffix. Hex integers like
# 0x1F must not match: a hex *float* requires a p-exponent.
FLOAT_LITERAL = re.compile(
    r"^(?:"
    r"(?:\d[\d']*\.[\d']*|\.\d[\d']*|\d[\d']*)(?:[eE][+-]?\d+)?"
    r"|0[xX][0-9a-fA-F']*(?:\.[0-9a-fA-F']*)?[pP][+-]?\d+"
    r")[fF]$")

WAIVER_RE = re.compile(r"fastcap-lint\s*:\s*(?!zone)(.*)", re.DOTALL)
WAIVER_ITEM_RE = re.compile(r"\s*([a-z][a-z0-9-]*)\s*\(([^()]*)\)\s*")
ZONE_PRAGMA_RE = re.compile(r"fastcap-lint-zone\s*:\s*(\S+)")
EXPECT_RE = re.compile(r"EXPECT:\s*((?:[RW]\d+\s*)+)")


class Finding:
    def __init__(self, path, line, col, rule, message, span=None,
                 tag=None):
        self.path = path
        self.line = line          # 1-based line of the trigger token
        self.col = col            # 1-based column
        self.rule = rule
        self.message = message
        # Lines a waiver may sit on (the statement's extent).
        self.span = span if span is not None else {line}
        self.tag = tag            # preferred waiver tag, if not default

    def render(self):
        tag = self.tag or WAIVER_TAGS_BY_RULE.get(self.rule)
        hint = ""
        if tag:
            hint = " [waive: // fastcap-lint: %s(reason)]" % tag
        return "%s:%d:%d: [%s] %s%s" % (
            self.path, self.line, self.col, self.rule, self.message,
            hint)


WAIVER_TAGS_BY_RULE = {}
for _tag, _rule in WAIVER_TAGS.items():
    WAIVER_TAGS_BY_RULE.setdefault(_rule, _tag)


# --------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------

class Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind, text, line, col):
        self.kind = kind  # 'id' | 'num' | 'punct' | 'pp'
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self):
        return "%s(%r)@%d:%d" % (self.kind, self.text, self.line,
                                 self.col)


class Comment:
    __slots__ = ("text", "start_line", "end_line", "code_before")

    def __init__(self, text, start_line, end_line, code_before):
        self.text = text
        self.start_line = start_line
        self.end_line = end_line
        # True when a code token precedes the comment on start_line.
        self.code_before = code_before


ID_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
ID_CONT = ID_START | frozenset("0123456789")
PUNCT3 = ("<<=", ">>=", "...", "->*")
PUNCT2 = ("::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
          "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--")


def tokenize(text):
    """Token, comment, and preprocessor-line streams for one file.

    Comments, string literals and char literals produce no code
    tokens. Preprocessor directives produce one 'pp' token carrying
    the full (continuation-joined) directive text.
    """
    tokens = []
    comments = []
    n = len(text)
    i = 0
    line = 1
    col = 1
    line_has_code = {}  # line -> True once a code token starts there

    def advance(k):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = text[i]
        # Whitespace
        if c in " \t\r\n\f\v":
            advance(1)
            continue
        # Line comment (respecting backslash continuation)
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            start_line, had_code = line, line_has_code.get(line, False)
            buf = []
            while i < n:
                if text[i] == "\n":
                    if buf and buf[-1] == "\\":
                        buf.pop()
                        advance(1)
                        continue
                    break
                buf.append(text[i])
                advance(1)
            comments.append(Comment("".join(buf[2:]), start_line, line,
                                    had_code))
            continue
        # Block comment
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            start_line, had_code = line, line_has_code.get(line, False)
            advance(2)
            buf = []
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                buf.append(text[i])
                advance(1)
            advance(2)
            comments.append(Comment("".join(buf), start_line, line,
                                    had_code))
            continue
        # Preprocessor directive (only at start of a logical line)
        if c == "#" and not line_has_code.get(line, False):
            start_line, start_col = line, col
            buf = []
            while i < n:
                if text[i] == "\n":
                    if buf and buf[-1] == "\\":
                        buf.pop()
                        advance(1)
                        continue
                    break
                # Comments inside directives end or skip them.
                if (text[i] == "/" and i + 1 < n and
                        text[i + 1] in "/*"):
                    break
                buf.append(text[i])
                advance(1)
            tokens.append(Token("pp", "".join(buf), start_line,
                                start_col))
            line_has_code[start_line] = True
            continue
        # Raw string literal
        m = None
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:i + 24])
        if m:
            delim = ")" + m.group(1) + '"'
            end = text.find(delim, i + m.end())
            end = n if end == -1 else end + len(delim)
            line_has_code[line] = True
            advance(end - i)
            continue
        # String / char literal (with encoding prefixes)
        if c in "\"'" or (c in "uUL" and _literal_ahead(text, i, n)):
            # Skip any prefix (u8, u, U, L) to the quote.
            j = i
            while j < n and text[j] not in "\"'":
                j += 1
            quote = text[j]
            # C++14 digit separator: 1'000'000 — an apostrophe
            # sandwiched between alnums is not a char literal.
            if (quote == "'" and j > 0 and
                    (text[j - 1] in ID_CONT) and j + 1 < n and
                    text[j + 1] in ID_CONT and j == i):
                # handled by the number/identifier scanners; fall out
                pass
            else:
                line_has_code[line] = True
                advance(j - i + 1)
                while i < n and text[i] != quote:
                    advance(2 if text[i] == "\\" else 1)
                advance(1)
                continue
        # Identifier / keyword
        if c in ID_START:
            start_line, start_col = line, col
            j = i
            while j < n and text[j] in ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], start_line,
                                start_col))
            line_has_code[start_line] = True
            advance(j - i)
            continue
        # Number (incl. digit separators, suffixes, hex floats)
        if c.isdigit() or (c == "." and i + 1 < n and
                           text[i + 1].isdigit()):
            start_line, start_col = line, col
            j = i
            while j < n:
                ch = text[j]
                if ch in ID_CONT or ch == ".":
                    j += 1
                elif ch == "'" and j + 1 < n and text[j + 1] in ID_CONT:
                    j += 1  # digit separator
                elif ch in "+-" and text[j - 1] in "eEpP":
                    j += 1  # exponent sign
                else:
                    break
            tokens.append(Token("num", text[i:j], start_line,
                                start_col))
            line_has_code[start_line] = True
            advance(j - i)
            continue
        # Punctuation
        for group in (PUNCT3, PUNCT2):
            tok = text[i:i + len(group[0])]
            if tok in group:
                tokens.append(Token("punct", tok, line, col))
                line_has_code[line] = True
                advance(len(tok))
                break
        else:
            tokens.append(Token("punct", c, line, col))
            line_has_code[line] = True
            advance(1)
        continue
    return tokens, comments


def _literal_ahead(text, i, n):
    """True when text[i:] starts an encoding-prefixed literal."""
    for pfx in ("u8", "u", "U", "L"):
        if text.startswith(pfx, i) and i + len(pfx) < n and \
                text[i + len(pfx)] in "\"'":
            # Not part of a longer identifier: `Label'` etc.
            if i > 0 and text[i - 1] in ID_CONT:
                return False
            return True
    return False


# --------------------------------------------------------------------
# Waivers
# --------------------------------------------------------------------

def collect_waivers(comments, tokens, findings, path):
    """Map waived line -> {tag: reason}; malformed waivers -> W0.

    A waiver on a line with preceding code waives that line (and, via
    the statement span, the statement it sits in). A waiver on a
    comment-only line waives the next line bearing code.
    """
    code_lines = sorted({t.line for t in tokens})
    waived = {}
    for c in comments:
        m = WAIVER_RE.search(c.text)
        if not m:
            continue
        body = m.group(1).strip()
        pos = 0
        entries = {}
        ok = bool(body)
        while pos < len(body):
            im = WAIVER_ITEM_RE.match(body, pos)
            if not im:
                ok = False
                break
            tag, reason = im.group(1), im.group(2).strip()
            if tag not in WAIVER_TAGS:
                findings.append(Finding(
                    path, c.start_line, 1, "W0",
                    "unknown waiver tag '%s' (known: %s)" %
                    (tag, ", ".join(sorted(WAIVER_TAGS)))))
            elif not reason:
                findings.append(Finding(
                    path, c.start_line, 1, "W0",
                    "waiver '%s' needs a reason: %s(why it is safe)" %
                    (tag, tag)))
            else:
                entries[tag] = reason
            pos = im.end()
            if pos < len(body):
                if body[pos] == ",":
                    pos += 1
                else:
                    ok = False
                    break
        if not ok:
            findings.append(Finding(
                path, c.start_line, 1, "W0",
                "malformed waiver; expected "
                "'fastcap-lint: tag(reason)[, tag(reason)...]'"))
        if not entries:
            continue
        if c.code_before:
            target = c.start_line
        else:
            target = next((ln for ln in code_lines
                           if ln > c.end_line), None)
            if target is None:
                continue
        waived.setdefault(target, {}).update(entries)
    return waived


def is_waived(finding, waivers):
    tag = WAIVER_TAGS_BY_RULE.get(finding.rule)
    if tag is None:
        return False
    specific = {"entropy", "wall-clock"}
    for ln in finding.span:
        entry = waivers.get(ln)
        if not entry:
            continue
        if tag in entry:
            return True
        # R2 has two tags; accept either on an R2 finding.
        if finding.rule == "R2" and specific & set(entry):
            return True
    return False


# --------------------------------------------------------------------
# Zones
# --------------------------------------------------------------------

def zone_of(relpath):
    """'tools' (exempt), 'util', 'result', 'src', or None (unlinted)."""
    p = relpath.replace(os.sep, "/")
    if p.startswith("tools/"):
        return "tools"
    if p.startswith("src/util/"):
        return "util"
    for d in RESULT_DIRS:
        if p.startswith(d + "/"):
            return "result"
    if p.startswith("src/"):
        return "src"
    return None


# --------------------------------------------------------------------
# Rule pass (token stream walk)
# --------------------------------------------------------------------

def statement_span(tokens, idx):
    """Lines of the statement containing tokens[idx].

    Bounded walk out to the enclosing ';' / '{' / '}' in both
    directions so waivers anywhere on a multi-line statement apply.
    """
    lines = {tokens[idx].line}
    j = idx - 1
    while j >= 0 and tokens[j].text not in (";", "{", "}"):
        lines.add(tokens[j].line)
        j -= 1
    j = idx + 1
    while j < len(tokens) and tokens[j].text not in (";", "{", "}"):
        lines.add(tokens[j].line)
        j += 1
    if j < len(tokens):
        lines.add(tokens[j].line)
    return lines


def qualified_name_at(tokens, i):
    """(dotted name, next index) for the `a::b::c` starting at i."""
    parts = [tokens[i].text]
    j = i + 1
    while (j + 1 < len(tokens) and tokens[j].text == "::" and
           tokens[j + 1].kind == "id"):
        parts.append(tokens[j + 1].text)
        j += 2
    return "::".join(parts), j


def prev_sig(tokens, i):
    return tokens[i - 1] if i > 0 else None


def skip_template_args(tokens, i):
    """Given tokens[i].text == '<', index just past the matching '>'."""
    depth = 0
    j = i
    while j < len(tokens):
        t = tokens[j].text
        if t == "<" or t == "<<":
            depth += 2 if t == "<<" else 1
        elif t == ">" or t == ">>":
            depth -= 2 if t == ">>" else 1
            if depth <= 0:
                return j + 1
        elif t in (";", "{"):
            return j  # malformed / not a template after all
        j += 1
    return j


class FileLinter:
    def __init__(self, path, relpath, text):
        self.path = path
        self.relpath = relpath
        self.findings = []
        self.tokens, self.comments = tokenize(text)
        # In-file zone override, for the self-test corpus.
        self.zone = zone_of(relpath)
        for c in self.comments:
            zm = ZONE_PRAGMA_RE.search(c.text)
            if zm:
                self.zone = zone_of(zm.group(1))
                break
        self.waivers = collect_waivers(self.comments, self.tokens,
                                       self.findings, relpath)
        # Scope-aware table of names with unordered container type.
        self.scopes = [set()]
        self.unordered_aliases = set()

    # -- helpers ------------------------------------------------------

    def add(self, tok, rule, msg, span=None, tag=None):
        self.findings.append(Finding(self.relpath, tok.line, tok.col,
                                     rule, msg, span, tag))

    def is_unordered_name(self, name):
        if name in self.unordered_aliases:
            return True
        return any(name in s for s in self.scopes)

    def declare(self, name):
        self.scopes[-1].add(name)

    # -- main walk ----------------------------------------------------

    def run(self):
        if self.zone in (None, "tools"):
            # tools/ is operator-facing: wall clock and ad-hoc format
            # are fine there; only the corpus pragma routes here.
            return self.findings
        toks = self.tokens
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == "pp":
                self.check_pp(t)
                i += 1
                continue
            if t.kind == "punct":
                if t.text == "{":
                    self.scopes.append(set())
                elif t.text == "}" and len(self.scopes) > 1:
                    self.scopes.pop()
                i += 1
                continue
            if t.kind == "num":
                self.check_float_literal(i)
                i += 1
                continue
            # Identifiers ---------------------------------------------
            prev = prev_sig(toks, i)
            name, after = qualified_name_at(toks, i)
            base = name.split("::")[-1]

            if t.text == "using" or t.text == "typedef":
                i = self.check_alias(i)
                continue
            if base in UNORDERED_TYPES and self.zone == "result":
                i = self.check_unordered_decl(i, after)
                continue
            if t.text == "for" and self.zone == "result":
                self.check_range_for(i)
                i += 1
                continue
            if base in FORMAT_BANNED or base in FORMAT_CHECKED:
                self.check_format_call(i, after, name, base)
                i = after
                continue
            if t.text == "float" and self.zone == "result":
                self.add(t, "R4",
                         "float in a double-only result path",
                         statement_span(toks, i))
                i += 1
                continue
            if t.text == "assert":
                self.check_assert(i)
                i += 1
                continue
            if self.zone in ("result", "src"):
                if self.check_banned_entropy(i, after, name, prev):
                    i = after
                    continue
            # begin()/end() handoff from a tracked unordered name.
            if (self.zone == "result" and
                    self.is_unordered_name(t.text) and
                    after < len(toks) and toks[after].text in
                    (".", "->") and after + 1 < len(toks) and
                    toks[after + 1].text in
                    ("begin", "end", "cbegin", "cend", "rbegin",
                     "rend")):
                self.add(t, "R1",
                         "iterator handoff from unordered container "
                         "'%s' (iteration order is "
                         "implementation-defined)" % t.text,
                         statement_span(toks, i))
                i = after + 2
                continue
            i = max(i + 1, after) if name != t.text else i + 1
        return [f for f in self.findings
                if not is_waived(f, self.waivers)]

    # -- individual rules ---------------------------------------------

    def check_pp(self, tok):
        m = re.match(r"#\s*include\s*[<\"]([^>\"]+)[>\"]", tok.text)
        if not m:
            return
        header = m.group(1)
        if header in ("cassert", "assert.h"):
            self.add(tok, "R5",
                     "include of %s; use FASTCAP_ASSERT from "
                     "util/logging.hpp" % header)
        if self.zone in ("result", "src") and header in ("random",):
            self.add(tok, "R2",
                     "include of <random>; draw from util/rng "
                     "SplitMix64 streams instead")

    def check_float_literal(self, i):
        tok = self.tokens[i]
        if self.zone == "result" and FLOAT_LITERAL.match(tok.text):
            self.add(tok, "R4",
                     "float literal '%s' in a double-only result "
                     "path" % tok.text,
                     statement_span(self.tokens, i))

    def check_alias(self, i):
        """`using X = unordered_…` / `typedef unordered_… X`."""
        toks = self.tokens
        j = i + 1
        alias = None
        saw_unordered = False
        if toks[i].text == "using" and j + 1 < len(toks) and \
                toks[j].kind == "id" and toks[j + 1].text == "=":
            alias = toks[j].text
            j += 2
        last_id = None
        while j < len(toks) and toks[j].text != ";":
            if toks[j].kind == "id":
                if toks[j].text in UNORDERED_TYPES:
                    saw_unordered = True
                elif self.is_unordered_name(toks[j].text):
                    saw_unordered = True
                last_id = toks[j]
            j += 1
        if toks[i].text == "typedef" and last_id is not None:
            alias = last_id.text
        if alias and saw_unordered:
            self.unordered_aliases.add(alias)
            if self.zone == "result":
                self.add(toks[i], "R1",
                         "alias '%s' of an unordered container in "
                         "result-affecting code" % alias,
                         statement_span(toks, i))
        return j + 1

    def check_unordered_decl(self, i, after):
        """A direct unordered_xxx<...> mention in result code."""
        toks = self.tokens
        j = after
        if j < len(toks) and toks[j].text == "<":
            j = skip_template_args(toks, j)
        # Declarator: skip refs/pointers/cv.
        while j < len(toks) and (toks[j].text in ("&", "*", "const") or
                                 toks[j].text == "::"):
            j += 1
        declared = None
        if j < len(toks) and toks[j].kind == "id":
            declared = toks[j].text
            self.declare(declared)
        what = ("declaration of '%s' as" % declared) if declared \
            else "use of"
        self.add(toks[i], "R1",
                 "%s an unordered container in result-affecting "
                 "code" % what, statement_span(toks, i))
        return j if j > i else i + 1

    def check_range_for(self, i):
        """`for (decl : expr)` where expr involves an unordered name."""
        toks = self.tokens
        j = i + 1
        if j >= len(toks) or toks[j].text != "(":
            return
        depth = 0
        colon = None
        k = j
        while k < len(toks):
            t = toks[k].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0:
                    break
            elif t == ":" and depth == 1:
                colon = k
            elif t == ";" and depth == 1:
                return  # classic for loop
            k += 1
        if colon is None or k >= len(toks):
            return
        for m in range(colon + 1, k):
            t = toks[m]
            if t.kind != "id":
                continue
            if (t.text in UNORDERED_TYPES or
                    self.is_unordered_name(t.text)):
                self.add(toks[i], "R1",
                         "range-for over unordered container "
                         "'%s': iteration order is "
                         "implementation-defined" % t.text,
                         set(tk.line for tk in toks[i:k + 1]))
                return

    def check_format_call(self, i, after, name, base):
        toks = self.tokens
        if after >= len(toks) or toks[after].text != "(":
            return  # mention, not a call (e.g. a function pointer table)
        span = statement_span(toks, i)
        if base in FORMAT_BANNED:
            self.add(toks[i], "R3",
                     "%s is banned (no bounds): use snprintf and "
                     "check the result" % base, span)
            return
        # Walk back past `std ::` to the token before the call.
        j = i - 1
        while j >= 0 and toks[j].text == "::":
            j -= 2
        before = toks[j] if j >= 0 else None
        discarded = before is None or before.text in (";", "{", "}")
        # Labels: `case X:` / `default:` — treat ':' like a boundary.
        if before is not None and before.text == ":":
            discarded = True
        # `(void)` cast is an explicit discard: still unchecked.
        if (before is not None and before.text == ")" and j >= 2 and
                toks[j - 1].text == "void" and toks[j - 2].text == "("):
            discarded = True
        if discarded:
            self.add(toks[i], "R3",
                     "%s return value unchecked: truncation must be "
                     "detected (checkedSnprintf() or compare against "
                     "the buffer size)" % base, span)

    def check_assert(self, i):
        toks = self.tokens
        nxt = toks[i + 1] if i + 1 < len(toks) else None
        prev = prev_sig(toks, i)
        if nxt is None or nxt.text != "(":
            return
        if prev is not None and prev.text in (".", "->", "::", "#"):
            return
        self.add(toks[i], "R5",
                 "raw assert(): compiled out in release; use "
                 "FASTCAP_ASSERT (panics) or fatal()",
                 statement_span(toks, i))

    def check_banned_entropy(self, i, after, name, prev):
        toks = self.tokens
        if prev is not None and prev.text in (".", "->", "::"):
            return False
        span = statement_span(toks, i)
        # Qualified names match as prefixes so member accesses like
        # std::chrono::steady_clock::now are caught at the head.
        for banned, kind in BANNED_QUALIFIED.items():
            if name == banned or name.startswith(banned + "::"):
                self.add(toks[i], "R2",
                         "%s: %s" % (banned, _r2_msg(kind)), span,
                         tag=kind)
                return True
        parts = name.split("::")
        if parts[0] in BANNED_BARE_TYPES:
            kind = BANNED_BARE_TYPES[parts[0]]
            self.add(toks[i], "R2",
                     "%s: %s" % (parts[0], _r2_msg(kind)), span,
                     tag=kind)
            return True
        # Banned C calls: bare `time(...)` or `std::time(...)`, but
        # never member calls (`sim.time()`) or other namespaces'.
        callee = None
        if len(parts) == 1:
            callee = parts[0]
        elif len(parts) == 2 and parts[0] == "std":
            callee = parts[1]
        if (callee in BANNED_CALLS and after < len(toks) and
                toks[after].text == "("):
            kind = BANNED_CALLS[callee]
            self.add(toks[i], "R2",
                     "%s(): %s" % (callee, _r2_msg(kind)), span,
                     tag=kind)
            return True
        return False


def _r2_msg(kind):
    if kind == "entropy":
        return ("ambient randomness breaks seeded reproducibility; "
                "derive a util/rng SplitMix64 stream instead")
    return ("wall clock in simulation code breaks bit-identity; "
            "use the sim clock (or waive for operator-only timing)")


# --------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------

def lint_file(path, relpath):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print("fastcap_lint: cannot read %s: %s" % (path, e),
              file=sys.stderr)
        sys.exit(2)
    return FileLinter(path, relpath, text).run()


def tree_files(root):
    out = []
    src = os.path.join(root, "src")
    for base, _dirs, names in os.walk(src):
        for nm in sorted(names):
            if nm.endswith((".cpp", ".hpp", ".h")):
                p = os.path.join(base, nm)
                out.append((p, os.path.relpath(p, root)))
    return sorted(out, key=lambda x: x[1])


def run_self_test(corpus_dir, root):
    """Check the linter against the seeded violation corpus.

    bad/ files carry `// EXPECT: R1 [R3 ...]` markers on each line
    that must fire exactly those rules; good/ files must be clean.
    """
    failures = []
    checked = 0
    for sub, expect_findings in (("bad", True), ("good", False)):
        d = os.path.join(corpus_dir, sub)
        if not os.path.isdir(d):
            failures.append("missing corpus directory: %s" % d)
            continue
        for nm in sorted(os.listdir(d)):
            if not nm.endswith((".cpp", ".hpp")):
                continue
            path = os.path.join(d, nm)
            rel = os.path.relpath(path, root)
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
            checked += 1
            findings = FileLinter(path, rel, text).run()
            got = {}
            for fd in findings:
                got.setdefault(fd.line, []).append(fd.rule)
            want = {}
            for lineno, line in enumerate(text.splitlines(), 1):
                m = EXPECT_RE.search(line)
                if m:
                    want[lineno] = sorted(m.group(1).split())
            if not expect_findings and want:
                failures.append("%s: good/ file has EXPECT markers"
                                % rel)
            if expect_findings and not want:
                failures.append("%s: bad/ file has no EXPECT markers"
                                % rel)
            for ln in sorted(set(got) | set(want)):
                g = sorted(got.get(ln, []))
                w = want.get(ln, [])
                if g != w:
                    failures.append(
                        "%s:%d: expected %s, got %s" %
                        (rel, ln, w or "none", g or "none"))
    if checked == 0:
        failures.append("corpus %s contains no snippets" % corpus_dir)
    if failures:
        for msg in failures:
            print("self-test FAIL: %s" % msg)
        return 1
    print("fastcap_lint self-test: %d corpus files OK" % checked)
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="fastcap_lint",
        description="FastCap determinism lint (rules R1-R5).")
    ap.add_argument("files", nargs="*",
                    help="files to lint (default: src/ tree)")
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels above "
                         "this script)")
    ap.add_argument("--self-test", metavar="DIR",
                    help="run the violation-corpus self-test against "
                         "DIR (with bad/ and good/ subdirectories)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "..", ".."))

    if args.list_rules:
        for rule in sorted(RULES):
            tag, desc = RULES[rule]
            waive = (" (waiver tag: %s)" % tag) if tag else ""
            print("%s  %s%s" % (rule, desc, waive))
        return 0

    if args.self_test:
        return run_self_test(args.self_test, root)

    if args.files:
        targets = [(f, os.path.relpath(os.path.abspath(f), root))
                   for f in args.files]
    else:
        targets = tree_files(root)

    all_findings = []
    for path, rel in targets:
        all_findings.extend(lint_file(path, rel))
    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    for f in all_findings:
        print(f.render())
    if all_findings:
        print("fastcap_lint: %d finding(s) in %d file(s)" %
              (len(all_findings),
               len({f.path for f in all_findings})))
        return 1
    print("fastcap_lint: clean (%d files)" % len(targets))
    return 0


if __name__ == "__main__":
    sys.exit(main())
