#!/usr/bin/env python3
"""FastCap determinism & concurrency lint — compatibility entry point.

The implementation lives in the ``fastcaplint`` package next to this
file (tokenizer, per-file rules, symbol index, taint and lock-order
passes). This shim keeps the historical invocation working:

    python3 tools/lint/fastcap_lint.py --root .
    python3 tools/lint/fastcap_lint.py --self-test tests/lint
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from fastcaplint.driver import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
