"""fastcaplint: the FastCap determinism & concurrency lint.

Per-file rules (R1–R5, W0) live in :mod:`fastcaplint.filerules`;
the cross-file passes — R6 determinism taint and R7 lock-order —
run over the symbol index in :mod:`fastcaplint.index`. Entry point:
``fastcaplint.driver.main`` (wrapped by ``tools/lint/fastcap_lint.py``).
"""

from .driver import main

__all__ = ["main"]
