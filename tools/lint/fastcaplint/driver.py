"""CLI driver: file collection, analysis passes, self-test harness.

Analysis order per invocation:

  1. per-file rules R1–R5 (+ W0) over every target file;
  2. symbol index + call graph over the same token streams;
  3. R6 determinism taint, R7 lock-order, and R8 telemetry-sink
     over the index;
  4. W1 stale-waiver harvest — only in whole-tree and self-test
     modes, where the file set is complete; linting an explicit file
     list must not call a waiver stale just because its matching
     caller was not on the command line.
"""

import argparse
import os
import re
import sys

from . import locks, sink, taint
from .filerules import FileLinter
from .findings import RULES, sort_key
from .index import SymbolIndex
from .tokens import TokenCache
from .waivers import stale_waiver_findings

EXPECT_RE = re.compile(r"EXPECT:\s*((?:[RW]\d+\s*)+)")


def analyze(targets, cache, enable_w1):
    """All findings over ``targets`` ([(path, relpath)]), sorted."""
    findings = []
    entries = []
    waiver_map = {}
    zone_map = {}
    for path, rel in targets:
        try:
            text, tokens, comments = cache.load(path)
        except OSError as e:
            print("fastcap_lint: cannot read %s: %s" % (path, e),
                  file=sys.stderr)
            sys.exit(2)
        linter = FileLinter(path, rel, text, tokens, comments)
        findings.extend(linter.run())
        waiver_map[rel] = linter.waivers
        zone_map[rel] = linter.zone
        entries.append((rel, linter.zone, tokens,
                        linter.source_facts))
    index = SymbolIndex()
    index.build(entries)
    findings.extend(taint.run(index, waiver_map, zone_map))
    findings.extend(locks.run(index, waiver_map))
    findings.extend(sink.run(index, waiver_map, zone_map))
    if enable_w1:
        for rel, ws in sorted(waiver_map.items()):
            if zone_map[rel] in ("result", "src", "util",
                                 "telemetry"):
                findings.extend(stale_waiver_findings(ws))
    findings.sort(key=sort_key)
    return findings


def tree_files(root):
    out = []
    src = os.path.join(root, "src")
    for base, _dirs, names in os.walk(src):
        for nm in sorted(names):
            if nm.endswith((".cpp", ".hpp", ".h")):
                p = os.path.join(base, nm)
                out.append((p, os.path.relpath(p, root)))
    return sorted(out, key=lambda x: x[1])


def _corpus_units(d):
    """Corpus units under bad/ or good/: each loose .cpp/.hpp file is
    a unit of one; each subdirectory is a multi-file unit analyzed
    together (cross-file rules see the whole unit)."""
    units = []
    for nm in sorted(os.listdir(d)):
        p = os.path.join(d, nm)
        if os.path.isdir(p):
            files = [os.path.join(p, f) for f in sorted(os.listdir(p))
                     if f.endswith((".cpp", ".hpp"))]
            if files:
                units.append(files)
        elif nm.endswith((".cpp", ".hpp")):
            units.append([p])
    return units


def run_self_test(corpus_dir, root, cache):
    """Check the linter against the seeded violation corpus.

    bad/ units carry `// EXPECT: R1 [R6 ...]` markers on each line
    that must fire exactly those rules; good/ units must be clean.
    W1 runs here, so every waiver in the corpus must earn its keep.
    """
    failures = []
    checked = 0
    for sub, expect_findings in (("bad", True), ("good", False)):
        d = os.path.join(corpus_dir, sub)
        if not os.path.isdir(d):
            failures.append("missing corpus directory: %s" % d)
            continue
        for files in _corpus_units(d):
            targets = [(p, os.path.relpath(p, root)) for p in files]
            checked += len(files)
            findings = analyze(targets, cache, enable_w1=True)
            got = {}
            for fd in findings:
                got.setdefault((fd.path, fd.line),
                               []).append(fd.rule)
            want = {}
            for path, rel in targets:
                text = cache.load(path)[0]
                for lineno, line in enumerate(text.splitlines(), 1):
                    m = EXPECT_RE.search(line)
                    if m:
                        want[(rel, lineno)] = \
                            sorted(m.group(1).split())
            unit_rel = os.path.relpath(files[0], root)
            if not expect_findings and want:
                failures.append("%s: good/ unit has EXPECT markers"
                                % unit_rel)
            if expect_findings and not want:
                failures.append("%s: bad/ unit has no EXPECT markers"
                                % unit_rel)
            for key in sorted(set(got) | set(want)):
                g = sorted(got.get(key, []))
                w = want.get(key, [])
                if g != w:
                    failures.append(
                        "%s:%d: expected %s, got %s" %
                        (key[0], key[1], w or "none", g or "none"))
    if checked == 0:
        failures.append("corpus %s contains no snippets" % corpus_dir)
    if failures:
        for msg in failures:
            print("self-test FAIL: %s" % msg)
        return 1
    print("fastcap_lint self-test: %d corpus files OK" % checked)
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="fastcap_lint",
        description="FastCap determinism & concurrency lint "
                    "(rules R1-R8, W0/W1).")
    ap.add_argument("files", nargs="*",
                    help="files to lint (default: src/ tree)")
    ap.add_argument("--root", default=None,
                    help="repository root (default: the tree "
                         "containing this script)")
    ap.add_argument("--self-test", metavar="DIR",
                    help="run the violation-corpus self-test against "
                         "DIR (with bad/ and good/ subdirectories)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--format", choices=("text", "jsonl"),
                    default="text",
                    help="finding output format (jsonl: one JSON "
                         "object per finding, no summary line)")
    ap.add_argument("--cache", metavar="DIR", default=None,
                    help="persist token streams here, keyed by file "
                         "mtime/size; safe to share across runs")
    args = ap.parse_args(argv)

    # This file lives in tools/lint/fastcaplint/: three levels up.
    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "..", "..", ".."))
    cache = TokenCache(args.cache)

    if args.list_rules:
        for rule in sorted(RULES):
            tag, desc = RULES[rule]
            waive = (" (waiver tag: %s)" % tag) if tag else ""
            print("%s  %s%s" % (rule, desc, waive))
        return 0

    if args.self_test:
        return run_self_test(args.self_test, root, cache)

    if args.files:
        targets = [(f, os.path.relpath(os.path.abspath(f), root))
                   for f in args.files]
        enable_w1 = False  # partial view: callers may be off-list
    else:
        targets = tree_files(root)
        enable_w1 = True

    all_findings = analyze(targets, cache, enable_w1)
    for f in all_findings:
        print(f.render_jsonl() if args.format == "jsonl"
              else f.render())
    if all_findings:
        if args.format == "text":
            print("fastcap_lint: %d finding(s) in %d file(s)" %
                  (len(all_findings),
                   len({f.path for f in all_findings})))
        return 1
    if args.format == "text":
        print("fastcap_lint: clean (%d files)" % len(targets))
    return 0
