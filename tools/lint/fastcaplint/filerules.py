"""Per-file rules R1–R5 (+ W0 via waiver parsing) and source facts.

The FileLinter walks one token stream. Besides emitting the zone-
scoped per-line findings, it records *source facts* — entropy /
wall-clock uses and unordered-container iteration — in every zone
including ``src/util``, because the cross-file taint pass (R6) needs
to know that a helper reads the clock even where that is perfectly
legal per-line.
"""

import os
import re

from .findings import Finding
from .waivers import (ZONE_PRAGMA_RE, collect_waivers, is_waived,
                      tags_for_finding)

# Directories (relative to repo root, forward slashes) whose code can
# feed experiment results: hash order, float rounding, or ambient
# entropy here can break the bit-identity contract. src/scenario and
# src/workload feed budget schedules and app swaps straight into
# experiment results, so they are result-affecting too.
RESULT_DIRS = ("src/core", "src/sim", "src/harness", "src/trace",
               "src/policies", "src/cluster", "src/scenario",
               "src/workload")

UNORDERED_TYPES = frozenset({
    "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset",
})

# R2: banned qualified names (token sequences joined with '::').
BANNED_QUALIFIED = {
    "std::random_device": "entropy",
    "std::mt19937": "entropy",
    "std::mt19937_64": "entropy",
    "std::default_random_engine": "entropy",
    "std::minstd_rand": "entropy",
    "std::minstd_rand0": "entropy",
    "std::knuth_b": "entropy",
    "std::chrono::steady_clock": "wall-clock",
    "std::chrono::system_clock": "wall-clock",
    "std::chrono::high_resolution_clock": "wall-clock",
}
# Unqualified spellings (after `using namespace std`, or C calls).
BANNED_BARE_TYPES = {
    "random_device": "entropy",
    "mt19937": "entropy",
    "mt19937_64": "entropy",
    "steady_clock": "wall-clock",
    "system_clock": "wall-clock",
    "high_resolution_clock": "wall-clock",
}
# Bare identifiers that are banned only as *calls* (`name(`), and only
# when not a member/qualified access (`x.time()` is fine).
BANNED_CALLS = {
    "rand": "entropy",
    "srand": "entropy",
    "random": "entropy",
    "drand48": "entropy",
    "time": "wall-clock",
    "clock": "wall-clock",
    "gettimeofday": "wall-clock",
    "clock_gettime": "wall-clock",
    "timespec_get": "wall-clock",
}

FORMAT_BANNED = frozenset({"sprintf", "vsprintf"})
FORMAT_CHECKED = frozenset({"snprintf", "vsnprintf"})

# Matches a floating literal with an f/F suffix. Hex integers like
# 0x1F must not match: a hex *float* requires a p-exponent.
FLOAT_LITERAL = re.compile(
    r"^(?:"
    r"(?:\d[\d']*\.[\d']*|\.\d[\d']*|\d[\d']*)(?:[eE][+-]?\d+)?"
    r"|0[xX][0-9a-fA-F']*(?:\.[0-9a-fA-F']*)?[pP][+-]?\d+"
    r")[fF]$")


def zone_of(relpath):
    """'tools' (exempt), 'util', 'result', 'src', or None (unlinted)."""
    p = relpath.replace(os.sep, "/")
    if p.startswith("tools/"):
        return "tools"
    if p.startswith("src/util/"):
        return "util"
    if p.startswith("src/telemetry/"):
        return "telemetry"
    for d in RESULT_DIRS:
        if p.startswith(d + "/"):
            return "result"
    if p.startswith("src/"):
        return "src"
    return None


def statement_span(tokens, idx):
    """Lines of the statement containing tokens[idx].

    Bounded walk out to the enclosing ';' / '{' / '}' in both
    directions so waivers anywhere on a multi-line statement apply.
    """
    lines = {tokens[idx].line}
    j = idx - 1
    while j >= 0 and tokens[j].text not in (";", "{", "}"):
        lines.add(tokens[j].line)
        j -= 1
    j = idx + 1
    while j < len(tokens) and tokens[j].text not in (";", "{", "}"):
        lines.add(tokens[j].line)
        j += 1
    if j < len(tokens):
        lines.add(tokens[j].line)
    return lines


def qualified_name_at(tokens, i):
    """(dotted name, next index) for the `a::b::c` starting at i."""
    parts = [tokens[i].text]
    j = i + 1
    while (j + 1 < len(tokens) and tokens[j].text == "::" and
           tokens[j + 1].kind == "id"):
        parts.append(tokens[j + 1].text)
        j += 2
    return "::".join(parts), j


def prev_sig(tokens, i):
    return tokens[i - 1] if i > 0 else None


def skip_template_args(tokens, i):
    """Given tokens[i].text == '<', index just past the matching '>'."""
    depth = 0
    j = i
    while j < len(tokens):
        t = tokens[j].text
        if t == "<" or t == "<<":
            depth += 2 if t == "<<" else 1
        elif t == ">" or t == ">>":
            depth -= 2 if t == ">>" else 1
            if depth <= 0:
                return j + 1
        elif t in (";", "{"):
            return j  # malformed / not a template after all
        j += 1
    return j


class SourceFact:
    """One determinism-taint source use inside a file.

    kind: 'entropy' | 'wall-clock' | 'order'. ``active`` is False
    when a waiver covers the use in a zone where the per-line rule
    applies — the waiver's claim ("results unaffected") extends to
    callers, so an inactive fact does not taint the function.
    """

    __slots__ = ("line", "col", "kind", "span", "active", "detail")

    def __init__(self, line, col, kind, span, detail):
        self.line = line
        self.col = col
        self.kind = kind
        self.span = span
        self.active = True
        self.detail = detail


class FileLinter:
    def __init__(self, path, relpath, text, tokens=None,
                 comments=None):
        self.path = path
        self.relpath = relpath
        self.findings = []
        if tokens is None:
            from .tokens import tokenize
            tokens, comments = tokenize(text)
        self.tokens = tokens
        self.comments = comments
        self.source_facts = []
        # In-file zone override, for the self-test corpus.
        self.zone = zone_of(relpath)
        for c in self.comments:
            zm = ZONE_PRAGMA_RE.search(c.text)
            if zm:
                self.zone = zone_of(zm.group(1))
                break
        self.waivers = collect_waivers(self.comments, self.tokens,
                                       self.findings, relpath)
        # Scope-aware table of names with unordered container type.
        self.scopes = [set()]
        self.unordered_aliases = set()

    # -- helpers ------------------------------------------------------

    def add(self, tok, rule, msg, span=None, tag=None):
        self.findings.append(Finding(self.relpath, tok.line, tok.col,
                                     rule, msg, span, tag))

    def fact(self, tok, kind, span, detail):
        self.source_facts.append(SourceFact(tok.line, tok.col, kind,
                                            span, detail))

    def is_unordered_name(self, name):
        if name in self.unordered_aliases:
            return True
        return any(name in s for s in self.scopes)

    def declare(self, name):
        self.scopes[-1].add(name)

    # -- main walk ----------------------------------------------------

    def run(self):
        """Per-file findings (waiver-filtered) and source facts."""
        if self.zone in (None, "tools"):
            # tools/ is operator-facing: wall clock and ad-hoc format
            # are fine there; only the corpus pragma routes here.
            return self.findings
        toks = self.tokens
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == "pp":
                self.check_pp(t)
                i += 1
                continue
            if t.kind == "punct":
                if t.text == "{":
                    self.scopes.append(set())
                elif t.text == "}" and len(self.scopes) > 1:
                    self.scopes.pop()
                i += 1
                continue
            if t.kind == "num":
                self.check_float_literal(i)
                i += 1
                continue
            # Identifiers ---------------------------------------------
            prev = prev_sig(toks, i)
            name, after = qualified_name_at(toks, i)
            base = name.split("::")[-1]

            if t.text == "using" or t.text == "typedef":
                i = self.check_alias(i)
                continue
            if base in UNORDERED_TYPES:
                i = self.check_unordered_decl(i, after)
                continue
            if t.text == "for":
                self.check_range_for(i)
                i += 1
                continue
            if base in FORMAT_BANNED or base in FORMAT_CHECKED:
                self.check_format_call(i, after, name, base)
                i = after
                continue
            if t.text == "float" and self.zone == "result":
                self.add(t, "R4",
                         "float in a double-only result path",
                         statement_span(toks, i))
                i += 1
                continue
            if t.text == "assert":
                self.check_assert(i)
                i += 1
                continue
            if self.check_banned_entropy(i, after, name, prev):
                i = after
                continue
            # begin()/end() handoff from a tracked unordered name.
            if (self.is_unordered_name(t.text) and
                    after < len(toks) and toks[after].text in
                    (".", "->") and after + 1 < len(toks) and
                    toks[after + 1].text in
                    ("begin", "end", "cbegin", "cend", "rbegin",
                     "rend")):
                span = statement_span(toks, i)
                self.fact(t, "order", span,
                          "iterator handoff from '%s'" % t.text)
                if self.zone == "result":
                    self.add(t, "R1",
                             "iterator handoff from unordered "
                             "container '%s' (iteration order is "
                             "implementation-defined)" % t.text,
                             span)
                i = after + 2
                continue
            i = max(i + 1, after) if name != t.text else i + 1
        kept = [f for f in self.findings
                if not is_waived(f, self.waivers)]
        self._deactivate_waived_facts()
        self.findings = kept
        return kept

    def _deactivate_waived_facts(self):
        """A waived use in a zone where the rule applies is inert.

        In exempt zones (src/util for R1/R2) a waiver comment would
        be meaningless, so the fact stays active there no matter
        what: sources in util always taint, and callers must waive
        the calling edge instead.
        """
        for fact in self.source_facts:
            if fact.kind == "order":
                applies = self.zone == "result"
                tags = frozenset(("order-insensitive",))
            else:
                applies = self.zone in ("result", "src", "telemetry")
                tags = frozenset(("entropy", "wall-clock"))
            if applies and self.waivers.find(fact.span, tags):
                fact.active = False

    # -- individual rules ---------------------------------------------

    def check_pp(self, tok):
        m = re.match(r"#\s*include\s*[<\"]([^>\"]+)[>\"]", tok.text)
        if not m:
            return
        header = m.group(1)
        if header in ("cassert", "assert.h"):
            self.add(tok, "R5",
                     "include of %s; use FASTCAP_ASSERT from "
                     "util/logging.hpp" % header)
        if (self.zone in ("result", "src", "telemetry") and
                header in ("random",)):
            self.add(tok, "R2",
                     "include of <random>; draw from util/rng "
                     "SplitMix64 streams instead")

    def check_float_literal(self, i):
        tok = self.tokens[i]
        if self.zone == "result" and FLOAT_LITERAL.match(tok.text):
            self.add(tok, "R4",
                     "float literal '%s' in a double-only result "
                     "path" % tok.text,
                     statement_span(self.tokens, i))

    def check_alias(self, i):
        """`using X = unordered_…` / `typedef unordered_… X`."""
        toks = self.tokens
        j = i + 1
        alias = None
        saw_unordered = False
        if toks[i].text == "using" and j + 1 < len(toks) and \
                toks[j].kind == "id" and toks[j + 1].text == "=":
            alias = toks[j].text
            j += 2
        last_id = None
        while j < len(toks) and toks[j].text != ";":
            if toks[j].kind == "id":
                if toks[j].text in UNORDERED_TYPES:
                    saw_unordered = True
                elif self.is_unordered_name(toks[j].text):
                    saw_unordered = True
                last_id = toks[j]
            j += 1
        if toks[i].text == "typedef" and last_id is not None:
            alias = last_id.text
        if alias and saw_unordered:
            self.unordered_aliases.add(alias)
            if self.zone == "result":
                self.add(toks[i], "R1",
                         "alias '%s' of an unordered container in "
                         "result-affecting code" % alias,
                         statement_span(toks, i))
        return j + 1

    def check_unordered_decl(self, i, after):
        """A direct unordered_xxx<...> mention; tracked in all zones
        (the taint pass needs util-zone iteration too), flagged only
        in result code."""
        toks = self.tokens
        j = after
        if j < len(toks) and toks[j].text == "<":
            j = skip_template_args(toks, j)
        # Declarator: skip refs/pointers/cv.
        while j < len(toks) and (toks[j].text in ("&", "*", "const") or
                                 toks[j].text == "::"):
            j += 1
        declared = None
        if j < len(toks) and toks[j].kind == "id":
            declared = toks[j].text
            self.declare(declared)
        if self.zone == "result":
            what = ("declaration of '%s' as" % declared) if declared \
                else "use of"
            self.add(toks[i], "R1",
                     "%s an unordered container in result-affecting "
                     "code" % what, statement_span(toks, i))
        return j if j > i else i + 1

    def check_range_for(self, i):
        """`for (decl : expr)` where expr involves an unordered name."""
        toks = self.tokens
        j = i + 1
        if j >= len(toks) or toks[j].text != "(":
            return
        depth = 0
        colon = None
        k = j
        while k < len(toks):
            t = toks[k].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0:
                    break
            elif t == ":" and depth == 1:
                colon = k
            elif t == ";" and depth == 1:
                return  # classic for loop
            k += 1
        if colon is None or k >= len(toks):
            return
        for m in range(colon + 1, k):
            t = toks[m]
            if t.kind != "id":
                continue
            if (t.text in UNORDERED_TYPES or
                    self.is_unordered_name(t.text)):
                span = set(tk.line for tk in toks[i:k + 1])
                self.fact(toks[i], "order", span,
                          "range-for over '%s'" % t.text)
                if self.zone == "result":
                    self.add(toks[i], "R1",
                             "range-for over unordered container "
                             "'%s': iteration order is "
                             "implementation-defined" % t.text,
                             span)
                return

    def check_format_call(self, i, after, name, base):
        toks = self.tokens
        if after >= len(toks) or toks[after].text != "(":
            return  # mention, not a call (e.g. a function pointer table)
        span = statement_span(toks, i)
        if base in FORMAT_BANNED:
            self.add(toks[i], "R3",
                     "%s is banned (no bounds): use snprintf and "
                     "check the result" % base, span)
            return
        # Walk back past `std ::` to the token before the call.
        j = i - 1
        while j >= 0 and toks[j].text == "::":
            j -= 2
        before = toks[j] if j >= 0 else None
        discarded = before is None or before.text in (";", "{", "}")
        # Labels: `case X:` / `default:` — treat ':' like a boundary.
        if before is not None and before.text == ":":
            discarded = True
        # `(void)` cast is an explicit discard: still unchecked.
        if (before is not None and before.text == ")" and j >= 2 and
                toks[j - 1].text == "void" and toks[j - 2].text == "("):
            discarded = True
        if discarded:
            self.add(toks[i], "R3",
                     "%s return value unchecked: truncation must be "
                     "detected (checkedSnprintf() or compare against "
                     "the buffer size)" % base, span)

    def check_assert(self, i):
        toks = self.tokens
        nxt = toks[i + 1] if i + 1 < len(toks) else None
        prev = prev_sig(toks, i)
        if nxt is None or nxt.text != "(":
            return
        if prev is not None and prev.text in (".", "->", "::", "#"):
            return
        self.add(toks[i], "R5",
                 "raw assert(): compiled out in release; use "
                 "FASTCAP_ASSERT (panics) or fatal()",
                 statement_span(toks, i))

    def check_banned_entropy(self, i, after, name, prev):
        toks = self.tokens
        if prev is not None and prev.text in (".", "->", "::"):
            return False
        span = statement_span(toks, i)
        emit = self.zone in ("result", "src", "telemetry")
        # Qualified names match as prefixes so member accesses like
        # std::chrono::steady_clock::now are caught at the head.
        for banned, kind in BANNED_QUALIFIED.items():
            if name == banned or name.startswith(banned + "::"):
                self.fact(toks[i], kind, span, banned)
                if emit:
                    self.add(toks[i], "R2",
                             "%s: %s" % (banned, _r2_msg(kind)), span,
                             tag=kind)
                return True
        parts = name.split("::")
        if parts[0] in BANNED_BARE_TYPES:
            kind = BANNED_BARE_TYPES[parts[0]]
            self.fact(toks[i], kind, span, parts[0])
            if emit:
                self.add(toks[i], "R2",
                         "%s: %s" % (parts[0], _r2_msg(kind)), span,
                         tag=kind)
            return True
        # Banned C calls: bare `time(...)` or `std::time(...)`, but
        # never member calls (`sim.time()`) or other namespaces'.
        callee = None
        if len(parts) == 1:
            callee = parts[0]
        elif len(parts) == 2 and parts[0] == "std":
            callee = parts[1]
        if (callee in BANNED_CALLS and after < len(toks) and
                toks[after].text == "("):
            kind = BANNED_CALLS[callee]
            self.fact(toks[i], kind, span, "%s()" % callee)
            if emit:
                self.add(toks[i], "R2",
                         "%s(): %s" % (callee, _r2_msg(kind)), span,
                         tag=kind)
            return True
        return False


def _r2_msg(kind):
    if kind == "entropy":
        return ("ambient randomness breaks seeded reproducibility; "
                "derive a util/rng SplitMix64 stream instead")
    return ("wall clock in simulation code breaks bit-identity; "
            "use the sim clock (or waive for operator-only timing)")
