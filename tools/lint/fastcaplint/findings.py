"""Finding type, rule catalog and waiver-tag tables."""

import json

RULES = {
    "R1": ("order-insensitive",
           "unordered container in result-affecting code"),
    "R2": ("entropy | wall-clock",
           "ambient randomness or wall clock outside util/tools"),
    "R3": ("format-checked",
           "unchecked snprintf return / banned sprintf"),
    "R4": ("float-ok",
           "float in double-only solver/model/merge path"),
    "R5": ("raw-assert",
           "raw assert; use FASTCAP_ASSERT or fatal()"),
    "R6": ("entropy | wall-clock | order-insensitive",
           "result-path call chain reaches a determinism-taint "
           "source"),
    "R7": ("lock-order",
           "lock acquisition order forms a cycle (potential "
           "deadlock)"),
    "R8": ("telemetry-sink",
           "telemetry value read back into result-affecting code "
           "(src/telemetry is write-only from result zones)"),
    "W0": (None, "malformed fastcap-lint waiver"),
    "W1": (None, "stale fastcap-lint waiver (suppresses nothing)"),
}

# Waiver tag -> rule it can silence. R6 accepts the tag matching the
# taint kind it reports (entropy / wall-clock / order-insensitive),
# enforced in waivers.tags_for_finding rather than here.
WAIVER_TAGS = {
    "order-insensitive": "R1",
    "entropy": "R2",
    "wall-clock": "R2",
    "format-checked": "R3",
    "float-ok": "R4",
    "raw-assert": "R5",
    "lock-order": "R7",
    "telemetry-sink": "R8",
}

WAIVER_TAGS_BY_RULE = {}
for _tag, _rule in WAIVER_TAGS.items():
    WAIVER_TAGS_BY_RULE.setdefault(_rule, _tag)


class Finding:
    def __init__(self, path, line, col, rule, message, span=None,
                 tag=None):
        self.path = path
        self.line = line          # 1-based line of the trigger token
        self.col = col            # 1-based column
        self.rule = rule
        self.message = message
        # Lines a waiver may sit on (the statement's extent).
        self.span = span if span is not None else {line}
        self.tag = tag            # preferred waiver tag, if not default

    def waive_tag(self):
        return self.tag or WAIVER_TAGS_BY_RULE.get(self.rule)

    def render(self):
        tag = self.waive_tag()
        hint = ""
        if tag:
            hint = " [waive: // fastcap-lint: %s(reason)]" % tag
        return "%s:%d:%d: [%s] %s%s" % (
            self.path, self.line, self.col, self.rule, self.message,
            hint)

    def render_jsonl(self):
        return json.dumps({
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "waive_tag": self.waive_tag(),
        }, sort_keys=True)


def sort_key(finding):
    return (finding.path, finding.line, finding.col, finding.rule)
