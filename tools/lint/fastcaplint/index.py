"""Lightweight symbol index and call graph over the token streams.

This is deliberately *not* a C++ front end (the container has no
clang): a heuristic, token-level scan that recovers the structure the
cross-file rules need — function definitions with qualified names,
class member types, call sites, and lock acquisitions with the set of
locks held at each point. Known approximations (documented in
docs/STATIC_ANALYSIS.md):

  * over-approx: a call to an ambiguous unqualified name links to
    every plausible definition; lambdas are attributed to their
    enclosing function; taint flows through any linked edge.
  * under-approx: calls through function pointers, virtual dispatch
    on unresolved object types, and mutexes we cannot resolve to a
    declared ``Mutex`` are invisible.

Structure pass (A) classifies every brace by inspecting the tokens
since the last statement boundary; body pass (B) walks each function
with a scope-aware lock/hold simulation.
"""

from .filerules import qualified_name_at, skip_template_args, \
    statement_span

CONTROL_HEAD = frozenset({
    "if", "for", "while", "switch", "catch", "do", "else", "try",
    "case", "default",
})
NOT_CALLEE = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast", "catch", "new", "delete", "throw", "noexcept",
    "static_assert", "typeid", "using", "template", "operator",
    "alignas", "defined", "co_await", "co_yield", "co_return",
    "this", "typename",
})
# Identifier tokens that may legitimately precede a call (so an id
# before `name(` does not always mean `Type name(...)` declaration).
CALL_PREV_KEYWORDS = frozenset({
    "return", "throw", "else", "do", "case", "goto", "new", "delete",
    "co_return", "co_await", "co_yield", "and", "or", "not", "in",
})
DECL_QUALIFIERS = frozenset({
    "public", "private", "protected", "mutable", "static", "const",
    "constexpr", "inline", "volatile", "friend", "explicit",
    "virtual", "extern", "thread_local", "register", "typename",
})
GUARD_TYPES = frozenset({"LockGuard", "UniqueLock"})
MUTEX_TYPE = "Mutex"


class CallSite:
    __slots__ = ("name", "member", "obj", "line", "col", "span",
                 "holds")

    def __init__(self, name, member, obj, line, col, span, holds):
        self.name = name      # 'f' or 'a::b::f'
        self.member = member  # True for x.f() / x->f()
        self.obj = obj        # base variable of the object expr
        self.line = line
        self.col = col
        self.span = span
        self.holds = holds    # [(mutex expr parts, Site)] at the call


class Acquisition:
    __slots__ = ("expr", "line", "col", "span", "holds")

    def __init__(self, expr, line, col, span, holds):
        self.expr = expr      # mutex expression as a parts list
        self.line = line
        self.col = col
        self.span = span
        self.holds = holds    # [(mutex expr parts, Site)] held before


class FunctionDef:
    __slots__ = ("qname", "name", "cls", "relpath", "zone", "line",
                 "start_line", "end_line", "body_range", "locals",
                 "local_mutexes", "calls", "acquisitions", "facts")

    def __init__(self, qname, name, cls, relpath, zone, line):
        self.qname = qname
        self.name = name
        self.cls = cls                  # enclosing class qname or None
        self.relpath = relpath
        self.zone = zone
        self.line = line
        self.start_line = line
        self.end_line = line
        self.body_range = (0, 0)        # token index range of the body
        self.locals = {}                # var -> type (last component)
        self.local_mutexes = set()      # vars declared `Mutex x` here
        self.calls = []
        self.acquisitions = []
        self.facts = []                 # SourceFacts inside the body


class FileIndex:
    def __init__(self, relpath, zone, tokens):
        self.relpath = relpath
        self.zone = zone
        self.tokens = tokens
        self.functions = []
        self.classes = {}       # class qname -> {member: type last}
        self.file_mutexes = set()  # namespace-scope `Mutex x` in file


def _qname_join(parts):
    return "::".join(p for p in parts if p)


def _head_after_template(head):
    if head and head[0].text == "template" and len(head) > 1 and \
            head[1].text == "<":
        depth = 0
        for k, t in enumerate(head[1:], 1):
            if t.text in ("<", "<<"):
                depth += 2 if t.text == "<<" else 1
            elif t.text in (">", ">>"):
                depth -= 2 if t.text == ">>" else 1
                if depth <= 0:
                    return head[k + 1:]
        return []
    return head


def _class_head_name(head):
    """Name of the class/struct/union a brace-opening head declares.

    Returns None when the head is not a class definition. Skips
    attribute-style macros (``class FASTCAP_CAPABILITY("x") Mutex``)
    by taking the last paren-depth-0 identifier before any base
    clause.
    """
    head = _head_after_template(head)
    kw = None
    for k, t in enumerate(head):
        if t.text in ("class", "struct", "union") and \
                _paren_depth_at(head, k) == 0:
            kw = k
    if kw is None:
        return None
    name = None
    depth = 0
    for t in head[kw + 1:]:
        if t.text == "(":
            depth += 1
        elif t.text == ")":
            depth -= 1
        elif depth == 0:
            if t.text == ":":
                break
            if t.kind == "id" and t.text not in ("final",):
                name = t.text
    return name or ""


def _paren_depth_at(head, idx):
    depth = 0
    for t in head[:idx]:
        if t.text == "(":
            depth += 1
        elif t.text == ")":
            depth -= 1
    return depth


def _function_head_name(head):
    """(name, line, col) of the function a brace-opening head defines.

    None when the head does not look like a function definition.
    Forward scan for the first ``idchain (`` at paren depth 0,
    skipping template argument lists; handles qualified names and
    destructors (``ThreadPool::~ThreadPool``).
    """
    head = _head_after_template(head)
    if not head:
        return None
    if head[0].text in CONTROL_HEAD:
        return None
    # `= {`-style initializers and `[...] {` lambdas are not defs.
    depth = 0
    for t in head:
        if t.text == "(":
            depth += 1
        elif t.text == ")":
            depth -= 1
        elif depth == 0 and t.text == "=":
            return None
    pos = 0
    while pos < len(head):
        t = head[pos]
        if t.kind != "id":
            if t.text == ":" and _paren_depth_at(head, pos) == 0:
                return None  # reached a ctor init list without a name
            pos += 1
            continue
        name, after = qualified_name_at(head, pos)
        if after < len(head) and head[after].text == "<":
            after = skip_template_args(head, after)
        if after < len(head) and head[after].text == "(":
            base = name.split("::")[-1]
            if base in NOT_CALLEE or base in CONTROL_HEAD or \
                    base in DECL_QUALIFIERS:
                pos = after + 1
                continue
            # Destructor: the id chain is preceded by '~'.
            if pos > 0 and head[pos - 1].text == "~":
                prefix = []
                q = pos - 2
                while q > 0 and head[q].text == "::" and \
                        head[q - 1].kind == "id":
                    prefix.insert(0, head[q - 1].text)
                    q -= 2
                name = _qname_join(["::".join(prefix), "~" + name]) \
                    if prefix else "~" + name
            return (name, t.line, t.col)
        pos = after if after > pos else pos + 1
    return None


def _parse_member_decl(head):
    """(type last component, member name) from a class-scope decl."""
    pos = 0
    # Access specifiers (`public:`) and leading qualifiers.
    while pos + 1 < len(head) and head[pos].kind == "id" and \
            head[pos].text in ("public", "private", "protected") and \
            head[pos + 1].text == ":":
        pos += 2
    while pos < len(head) and head[pos].kind == "id" and \
            head[pos].text in DECL_QUALIFIERS:
        pos += 1
    if pos >= len(head) or head[pos].kind != "id":
        return None
    if head[pos].text in ("class", "struct", "union", "enum", "using",
                          "typedef", "namespace"):
        return None
    tname, after = qualified_name_at(head, pos)
    if after < len(head) and head[after].text == "<":
        after = skip_template_args(head, after)
    while after < len(head) and head[after].text in ("&", "*",
                                                     "const"):
        after += 1
    if after >= len(head) or head[after].kind != "id":
        return None
    return (tname.split("::")[-1], head[after].text)


class _Scope:
    __slots__ = ("kind", "name", "depth")

    def __init__(self, kind, name, depth):
        self.kind = kind  # 'ns' | 'class' | 'fn' | 'enum' | 'block'
        self.name = name
        self.depth = depth


def scan_file_structure(relpath, zone, tokens):
    """Pass A: functions, classes and their members, file mutexes."""
    fidx = FileIndex(relpath, zone, tokens)
    scopes = []
    depth = 0
    head = []
    open_fns = []  # (FunctionDef, body start token index, depth)

    def ns_prefix():
        return [s.name for s in scopes if s.kind in ("ns", "class")]

    def cur_class():
        for s in reversed(scopes):
            if s.kind == "class":
                return _qname_join([n for n in
                                    [x.name for x in scopes
                                     if x.kind in ("ns", "class")]])
        return None

    def innermost_kind():
        return scopes[-1].kind if scopes else "ns"

    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "pp":
            i += 1
            continue
        if t.text == "{":
            kind, name = _classify_brace(head, scopes)
            if kind == "fn" and not open_fns:
                cls = None
                qparts = ns_prefix()
                if scopes and scopes[-1].kind == "class":
                    cls = _qname_join(qparts)
                elif "::" in name:
                    cls = _qname_join(qparts +
                                      name.split("::")[:-1])
                fq = _qname_join(qparts + [name])
                fn = FunctionDef(fq, name.split("::")[-1], cls,
                                 relpath, zone, head_line(head, t))
                fn.start_line = t.line
                open_fns.append((fn, i + 1, depth))
                fidx.functions.append(fn)
            scopes.append(_Scope(kind, name, depth))
            depth += 1
            head = []
            i += 1
            continue
        if t.text == "}":
            depth -= 1
            while scopes and scopes[-1].depth >= depth:
                s = scopes.pop()
                if s.kind == "fn" and open_fns and \
                        open_fns[-1][2] == s.depth:
                    fn, start, _d = open_fns.pop()
                    fn.body_range = (start, i)
                    fn.end_line = t.line
            head = []
            i += 1
            continue
        if t.text == ";":
            if not open_fns:
                if scopes and scopes[-1].kind == "class":
                    decl = _parse_member_decl(head)
                    if decl is not None:
                        cq = _qname_join([s.name for s in scopes
                                          if s.kind in ("ns",
                                                        "class")])
                        fidx.classes.setdefault(cq, {})[decl[1]] = \
                            decl[0]
                elif innermost_kind() in ("ns",) or not scopes:
                    decl = _parse_member_decl(head)
                    if decl is not None and decl[0] == MUTEX_TYPE:
                        fidx.file_mutexes.add(decl[1])
            head = []
            i += 1
            continue
        head.append(t)
        i += 1
    return fidx


def head_line(head, brace_tok):
    for t in head:
        return t.line
    return brace_tok.line


def _classify_brace(head, scopes):
    """What scope does this '{' open?"""
    if not head:
        return ("block", None)
    h = head
    if h[0].text == "namespace":
        parts = [t.text for t in h[1:] if t.kind == "id"]
        return ("ns", "::".join(parts) if parts else "")
    if h[0].text in ("enum",):
        return ("enum", None)
    cname = _class_head_name(h)
    if cname is not None:
        return ("class", cname)
    if h[0].text in CONTROL_HEAD:
        return ("block", None)
    # enum after qualifiers (`enum class E : int {`) — anywhere at
    # depth 0 counts.
    for k, t in enumerate(h):
        if t.text == "enum" and _paren_depth_at(h, k) == 0:
            return ("enum", None)
    fname = _function_head_name(h)
    if fname is not None:
        # Only namespace/class scope hosts function definitions we
        # track; inside a function everything is a block (lambdas).
        if not scopes or scopes[-1].kind in ("ns", "class"):
            return ("fn", fname[0])
    return ("block", None)


# ---------------------------------------------------------------------
# Pass B: per-function body walk (calls, locals, lock simulation)
# ---------------------------------------------------------------------

class _Hold:
    __slots__ = ("expr", "line", "col", "depth", "active", "manual")

    def __init__(self, expr, line, col, depth, manual):
        self.expr = expr
        self.line = line
        self.col = col
        self.depth = depth
        self.active = True
        self.manual = manual


def _object_expr_before(tokens, i):
    """Parts of the `a.b->c` object expression ending just before
    tokens[i] (which is the '.'/'->' preceding the member name)."""
    parts = []
    j = i - 1
    expect_id = True
    while j >= 0:
        t = tokens[j]
        if expect_id:
            if t.kind == "id":
                parts.insert(0, t.text)
                expect_id = False
                j -= 1
                continue
            if t.text == ")":
                return parts  # call-result base: unresolvable
            break
        else:
            if t.text in (".", "->"):
                expect_id = True
                j -= 1
                continue
            break
    return parts


def scan_function_body(fn, tokens, class_names):
    """Pass B. ``class_names`` is the set of indexed class last-name
    components, used to keep local-variable type tracking precise."""
    start, end = fn.body_range
    depth = 0
    guards = {}       # var -> _Hold (+ mutex expr via .expr)
    holds = []        # list of _Hold (guards and manual locks)

    def active_holds():
        return [(h.expr, (h.line, h.col)) for h in holds if h.active]

    i = start
    while i < end:
        t = tokens[i]
        if t.kind == "pp":
            i += 1
            continue
        if t.text == "{":
            depth += 1
            i += 1
            continue
        if t.text == "}":
            for h in holds:
                if not h.manual and h.active and h.depth >= depth:
                    h.active = False
            for g in guards.values():
                if g.active and g.depth >= depth:
                    g.active = False
            depth -= 1
            i += 1
            continue
        if t.kind != "id":
            i += 1
            continue
        prev = tokens[i - 1] if i > start else None
        # Member access: guard ops, mutex ops, member calls.
        if prev is not None and prev.text in (".", "->"):
            nxt = tokens[i + 1] if i + 1 < end else None
            if nxt is not None and nxt.text == "(":
                obj = _object_expr_before(tokens, i - 1)
                if t.text in ("lock", "unlock") and len(obj) >= 1:
                    if _handle_lock_op(fn, tokens, i, t, obj, guards,
                                       holds, depth, class_names):
                        i += 2
                        continue
                fn.calls.append(CallSite(
                    t.text, True, obj[0] if obj else None, t.line,
                    t.col, statement_span(tokens, i),
                    active_holds()))
            i += 1
            continue
        if prev is not None and prev.text == "::":
            i += 1
            continue
        # Declarations: `Type name(...)` / `Type name = ...` —
        # guard/mutex declarations and typed locals.
        name, after = qualified_name_at(tokens, i)
        base = name.split("::")[-1]
        decl_end = _try_declaration(fn, tokens, i, after, base, end,
                                    guards, holds, depth, class_names,
                                    active_holds)
        if decl_end is not None:
            i = decl_end
            continue
        # Bare calls.
        j = after
        if j < end and tokens[j].text == "<":
            k = skip_template_args(tokens, j)
            if k < end and tokens[k].text == "(":
                j = k
        if j < end and tokens[j].text == "(" and \
                base not in NOT_CALLEE:
            is_decl = (prev is not None and prev.kind == "id" and
                       prev.text not in CALL_PREV_KEYWORDS)
            if not is_decl:
                fn.calls.append(CallSite(
                    name, False, None, t.line, t.col,
                    statement_span(tokens, i), active_holds()))
        i = after if after > i else i + 1
    # Function end releases everything.
    for h in holds:
        h.active = False


def _try_declaration(fn, tokens, i, after, base, end, guards, holds,
                     depth, class_names, active_holds):
    """Recognize `Type var ...` at tokens[i]; returns the index to
    resume at, or None when it is not a tracked declaration."""
    j = after
    if j < end and tokens[j].text == "<":
        j = skip_template_args(tokens, j)
    while j < end and tokens[j].text in ("&", "*", "const"):
        j += 1
    if j >= end or tokens[j].kind != "id":
        return None
    var = tokens[j].text
    nxt = tokens[j + 1].text if j + 1 < end else ""
    if nxt not in ("(", "=", ";", ",", "{", ")", ":"):
        return None
    if base in GUARD_TYPES and nxt in ("(", "{"):
        expr = _collect_paren_expr(tokens, j + 1, end)
        if expr:
            fn.acquisitions.append(Acquisition(
                expr, tokens[i].line, tokens[i].col,
                statement_span(tokens, i), active_holds()))
            h = _Hold(expr, tokens[i].line, tokens[i].col, depth,
                      False)
            holds.append(h)
            guards[var] = h
        return j + 1
    if base == MUTEX_TYPE:
        fn.local_mutexes.add(var)
        fn.locals[var] = MUTEX_TYPE
        return j + 1
    if base in class_names:
        fn.locals[var] = base
        return j + 1
    return None


def _collect_paren_expr(tokens, i, end):
    """Identifier parts of the parenthesized expr at tokens[i]=='('
    (or '{'): ['c', 'mu'] for `(c.mu)`. None when too complex."""
    close = ")" if tokens[i].text == "(" else "}"
    parts = []
    j = i + 1
    while j < end and tokens[j].text != close:
        t = tokens[j]
        if t.kind == "id":
            parts.append(t.text)
        elif t.text in (".", "->", "this"):
            pass
        elif t.text == "(":
            return None  # call inside: unresolvable
        else:
            return None
        j += 1
    return parts or None


def _handle_lock_op(fn, tokens, i, t, obj, guards, holds, depth,
                    class_names):
    """`x.lock()` / `x.unlock()`: guard re-lock or manual mutex op.

    Returns True when consumed as a lock operation (no call site is
    recorded then)."""
    var = obj[-1] if len(obj) == 1 else None
    if var is not None and var in guards:
        g = guards[var]
        if t.text == "lock":
            if not g.active:
                fn.acquisitions.append(Acquisition(
                    g.expr, t.line, t.col,
                    statement_span(tokens, i),
                    [(h.expr, (h.line, h.col)) for h in holds
                     if h.active]))
                g.active = True
                g.line, g.col = t.line, t.col
        else:
            g.active = False
        return True
    # Direct mutex op: only when the object is plausibly a Mutex —
    # a local `Mutex x`, a member/typed local resolved later, or a
    # dotted path; resolution to a real Mutex happens in locks.py,
    # unresolvable acquisitions are dropped there.
    if t.text == "lock":
        fn.acquisitions.append(Acquisition(
            obj, t.line, t.col, statement_span(tokens, i),
            [(h.expr, (h.line, h.col)) for h in holds if h.active]))
        holds.append(_Hold(obj, t.line, t.col, depth, True))
        return True
    for h in holds:
        if h.manual and h.active and h.expr == obj:
            h.active = False
            return True
    return True  # unlock of something we never saw locked: ignore


# ---------------------------------------------------------------------
# The cross-file index
# ---------------------------------------------------------------------

class SymbolIndex:
    def __init__(self):
        self.files = {}          # relpath -> FileIndex
        self.functions = []
        self.by_qname = {}
        self.by_name = {}
        self.classes = {}        # class qname -> {member: type last}
        self.classes_by_name = {}

    def build(self, entries):
        """entries: [(relpath, zone, tokens, source_facts)]."""
        for relpath, zone, tokens, _facts in entries:
            if zone in (None, "tools"):
                continue
            fidx = scan_file_structure(relpath, zone, tokens)
            self.files[relpath] = fidx
            for cq, members in fidx.classes.items():
                self.classes.setdefault(cq, {}).update(members)
            for fn in fidx.functions:
                self.functions.append(fn)
        for cq in self.classes:
            self.classes_by_name.setdefault(
                cq.split("::")[-1], []).append(cq)
        for fn in self.functions:
            self.by_qname.setdefault(fn.qname, []).append(fn)
            self.by_name.setdefault(fn.name, []).append(fn)
        class_names = frozenset(self.classes_by_name) | \
            GUARD_TYPES | {MUTEX_TYPE}
        for relpath, fidx in self.files.items():
            for fn in fidx.functions:
                scan_function_body(fn, fidx.tokens, class_names)
        # Attach source facts to the innermost containing function.
        for relpath, zone, tokens, facts in entries:
            fidx = self.files.get(relpath)
            if fidx is None:
                continue
            for fact in facts:
                fn = self._containing_function(fidx, fact.line)
                if fn is not None:
                    fn.facts.append(fact)

    def _containing_function(self, fidx, line):
        best = None
        for fn in fidx.functions:
            if fn.start_line <= line <= fn.end_line:
                if best is None or (fn.end_line - fn.start_line) < \
                        (best.end_line - best.start_line):
                    best = fn
        return best

    def class_of_type(self, tname):
        cands = self.classes_by_name.get(tname, [])
        return cands[0] if len(cands) == 1 else None

    def mutex_members(self, cq):
        return {m for m, ty in self.classes.get(cq, {}).items()
                if ty == MUTEX_TYPE}

    def resolve_call(self, call, caller):
        """Plausible FunctionDef targets of a call site."""
        if call.member:
            base = call.obj
            cq = None
            if base in (None, "this"):
                cq = caller.cls
            else:
                ty = caller.locals.get(base)
                if ty is None and caller.cls:
                    ty = self.classes.get(caller.cls, {}).get(base)
                if ty is None:
                    fidx = self.files.get(caller.relpath)
                    if fidx is not None and base in \
                            fidx.file_mutexes:
                        ty = MUTEX_TYPE
                if ty is not None:
                    cq = self.class_of_type(ty)
            if cq is None:
                return []
            return list(self.by_qname.get(cq + "::" + call.name, []))
        parts = call.name.split("::")
        if len(parts) > 1:
            suffix = "::" + call.name
            return [fn for fn in self.by_name.get(parts[-1], [])
                    if fn.qname == call.name or
                    fn.qname.endswith(suffix)]
        name = parts[0]
        if caller.cls:
            cands = self.by_qname.get(caller.cls + "::" + name, [])
            if cands:
                return list(cands)
        cands = [fn for fn in self.by_name.get(name, [])
                 if fn.cls is None]
        if cands:
            return cands
        cq = self.class_of_type(name)
        if cq:  # constructor: `Type x(...)` / `Type(...)`
            return list(self.by_qname.get(cq + "::" + name, []))
        return []

    def mutex_identity(self, expr, fn):
        """Stable cross-function identity for a mutex expression, or
        None when it cannot be resolved to a declared Mutex."""
        parts = [p for p in expr if p != "this"]
        if not parts:
            return None
        if len(parts) == 1:
            nm = parts[0]
            if nm in fn.local_mutexes:
                return fn.qname + "::" + nm
            if fn.cls and nm in self.mutex_members(fn.cls):
                return fn.cls + "::" + nm
            fidx = self.files.get(fn.relpath)
            if fidx is not None and nm in fidx.file_mutexes:
                return fn.relpath + "::" + nm
            return None
        base, leaf = parts[0], parts[-1]
        ty = fn.locals.get(base)
        if ty is None and fn.cls:
            ty = self.classes.get(fn.cls, {}).get(base)
        if ty is not None:
            cq = self.class_of_type(ty)
            if cq and leaf in self.mutex_members(cq):
                return cq + "::" + leaf
        return None
