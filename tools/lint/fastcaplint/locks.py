"""R7: lock-order analysis over the symbol index.

Builds the global *acquired-while-holding* graph: an edge A -> B
means some code path acquires mutex B while holding mutex A. Direct
edges come from the per-function lock simulation (``LockGuard`` /
``UniqueLock`` declarations and ``m.lock()`` on resolvable
``Mutex`` objects); one level of interprocedural edges comes from
calls made while holding locks, targeting the callee's *direct*
acquisitions.

A cycle in the graph is a potential deadlock (R7) — reported once
per strongly connected component, anchored at the smallest involved
acquisition site, with every edge's witness printed. A self-edge is
a double-acquire of a non-recursive Mutex and is reported per site.

A ``fastcap-lint: lock-order(reason)`` waiver on an acquisition or
call statement removes the edges created at that site (and counts as
used only when the site actually created an edge — otherwise it goes
stale and W1 fires).
"""

from .findings import Finding

_TAGS = frozenset(("lock-order",))


class _Edge:
    __slots__ = ("src", "dst", "relpath", "line", "col", "fn",
                 "held_line", "via")

    def __init__(self, src, dst, relpath, line, col, fn, held_line,
                 via):
        self.src = src          # mutex identity held
        self.dst = dst          # mutex identity acquired
        self.relpath = relpath  # file of the acquiring site
        self.line = line
        self.col = col
        self.fn = fn            # function containing the site
        self.held_line = held_line
        self.via = via          # callee qname for propagated edges


def _site_waived(relpath, span, waiver_map, mark):
    ws = waiver_map.get(relpath)
    if ws is None:
        return False
    if mark:
        return ws.waive(span, _TAGS)
    return ws.find(span, _TAGS) is not None


def build_edges(index, waiver_map):
    edges = []
    direct = {}  # FunctionDef -> [(identity, Acquisition)]
    for fn in index.functions:
        resolved = []
        for acq in fn.acquisitions:
            ident = index.mutex_identity(acq.expr, fn)
            if ident is not None:
                resolved.append((ident, acq))
        direct[fn] = resolved
        for ident, acq in resolved:
            held = [(index.mutex_identity(e, fn), site)
                    for e, site in acq.holds]
            held = [(h, site) for h, site in held if h is not None]
            if not held:
                continue
            if _site_waived(fn.relpath, acq.span, waiver_map,
                            mark=True):
                continue
            for hid, site in held:
                edges.append(_Edge(hid, ident, fn.relpath, acq.line,
                                   acq.col, fn, site[0], None))
    # One level of propagation: calls made while holding locks link
    # the held mutexes to the callee's direct acquisitions.
    for fn in index.functions:
        for call in fn.calls:
            if not call.holds:
                continue
            held = [(index.mutex_identity(e, fn), site)
                    for e, site in call.holds]
            held = [(h, site) for h, site in held if h is not None]
            if not held:
                continue
            targets = index.resolve_call(call, fn)
            tgt_acqs = [(tgt, ident, acq)
                        for tgt in targets
                        for ident, acq in direct.get(tgt, ())]
            if not tgt_acqs:
                continue
            if _site_waived(fn.relpath, call.span, waiver_map,
                            mark=True):
                continue
            for tgt, ident, _acq in tgt_acqs:
                for hid, site in held:
                    edges.append(_Edge(hid, ident, fn.relpath,
                                       call.line, call.col, fn,
                                       site[0], tgt.qname))
    return edges


def run(index, waiver_map):
    edges = build_edges(index, waiver_map)
    findings = []

    # Self-edges: double-acquire of a non-recursive mutex.
    seen_self = set()
    graph = {}
    for e in edges:
        if e.src == e.dst:
            key = (e.relpath, e.line, e.col)
            if key not in seen_self:
                seen_self.add(key)
                via = (" via call to '%s'" % e.via) if e.via else ""
                findings.append(Finding(
                    e.relpath, e.line, e.col, "R7",
                    "mutex '%s' acquired%s while already held "
                    "(acquired at line %d): self-deadlock on a "
                    "non-recursive Mutex" %
                    (e.dst, via, e.held_line), tag="lock-order"))
            continue
        graph.setdefault(e.src, {}).setdefault(e.dst, []).append(e)

    for scc in _cycles(graph):
        cyc_edges = _witness_cycle(graph, scc)
        if not cyc_edges:
            continue
        anchor = min(cyc_edges,
                     key=lambda e: (e.relpath, e.line, e.col))
        parts = []
        for e in cyc_edges:
            via = (" (via '%s')" % e.via) if e.via else ""
            parts.append(
                "'%s' acquired at %s:%d in %s%s while holding '%s'" %
                (e.dst, e.relpath, e.line, e.fn.qname, via, e.src))
        order = " -> ".join([e.src for e in cyc_edges] +
                            [cyc_edges[0].src])
        findings.append(Finding(
            anchor.relpath, anchor.line, anchor.col, "R7",
            "lock acquisition cycle %s: %s — pick one global order "
            "(or waive the intended edge with lock-order)" %
            (order, "; ".join(parts)), tag="lock-order"))
    return findings


def _cycles(graph):
    """Strongly connected components with more than one node."""
    nodes = sorted(set(graph) |
                   {d for m in graph.values() for d in m})
    idx = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    def strongconnect(v):
        # Iterative Tarjan (explicit stack) — corpus graphs are tiny
        # but recursion depth must not depend on input shape.
        work = [(v, iter(sorted(graph.get(v, ()))))]
        idx[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in idx:
                    idx[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph.get(w, ())))))
                    advanced = True
                    break
                elif w in on_stack:
                    low[node] = min(low[node], idx[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == idx[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                if len(comp) > 1:
                    sccs.append(sorted(comp))

    for v in nodes:
        if v not in idx:
            strongconnect(v)
    return sorted(sccs)


def _witness_cycle(graph, scc):
    """A concrete simple cycle inside ``scc``, as a list of edges
    (each the smallest-site witness for its src->dst pair)."""
    members = set(scc)
    start = scc[0]
    # BFS restricted to the SCC, tracking the path of node hops.
    from collections import deque
    parent = {start: None}
    q = deque([start])
    back = None  # node with an edge back to start
    while q and back is None:
        u = q.popleft()
        for w in sorted(graph.get(u, ())):
            if w == start:
                back = u
                break
            if w in members and w not in parent:
                parent[w] = u
                q.append(w)
    if back is None:
        return []
    hops = [back]
    while hops[-1] != start:
        hops.append(parent[hops[-1]])
    hops.reverse()  # start ... back
    pairs = list(zip(hops, hops[1:] + [start]))
    out = []
    for src, dst in pairs:
        cands = graph[src][dst]
        out.append(min(cands,
                       key=lambda e: (e.relpath, e.line, e.col)))
    return out
