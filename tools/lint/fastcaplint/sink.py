"""R8: the telemetry sink rule.

``src/telemetry`` is observe-only: result-affecting code may *write*
metrics and trace events (and check the global ``enabled()`` gate),
but a telemetry value flowing back into a result-zone expression
would let instrumentation change simulation results — exactly what
the telemetry-on-vs-off byte-identity gate forbids. A result-zone
call that resolves into ``src/telemetry`` and is not on the write
surface below is a finding, waivable with ``telemetry-sink(reason)``
on the call statement.

Same heuristic resolution limits as R6: reads through unresolvable
object expressions (chained temporaries, function pointers) are
invisible. The runtime byte-identity `cmp` gates backstop what the
static rule cannot see.
"""

from .findings import Finding

# The write surface of src/telemetry: registration, the enabled()
# gate, commuting/merging writes, trace appends, and file output.
# Everything else defined in the telemetry zone returns observed
# state and must not be called from a result zone.
_WRITE_SURFACE = frozenset((
    # registry access + registration
    "global", "counter", "gauge", "histogram",
    "Registry", "Histogram",
    # the process-wide switch
    "enabled", "setEnabled",
    # commuting writes and registry folds
    "add", "mergeAdd", "set", "setMax", "mergeMax", "observe",
    "mergeBuckets", "mergeFrom", "reset", "resetAll",
    # tracer appends and output
    "Tracer", "track", "span", "instant", "counterEvent",
    "writeJson", "jsonString",
))


def run(index, waiver_map, zone_map):
    """R8 findings over every result-zone call site."""
    findings = []
    for fn in index.functions:
        if zone_map.get(fn.relpath) != "result":
            continue
        for call in fn.calls:
            for tgt in index.resolve_call(call, fn):
                if tgt.zone != "telemetry":
                    continue
                if tgt.name in _WRITE_SURFACE:
                    continue
                ws = waiver_map.get(fn.relpath)
                if ws is not None and \
                        ws.waive(call.span, ("telemetry-sink",)):
                    break
                findings.append(Finding(
                    fn.relpath, call.line, call.col, "R8",
                    "telemetry read in result zone: '%s' resolves "
                    "to %s — telemetry is observe-only; its values "
                    "must never feed back into results" %
                    (call.name, tgt.qname),
                    call.span, tag="telemetry-sink"))
                break  # one finding per call site
    return findings
