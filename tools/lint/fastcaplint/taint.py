"""R6: cross-file determinism taint.

A function is *tainted* with a kind ('entropy', 'wall-clock',
'order') when its body contains an active source fact of that kind,
or when it calls — through any number of hops — a function that is.
Facts in ``src/util`` taint even though the per-line rules exempt
that zone: ``wallSeconds()`` is legal to *define* in util, but a
result-path caller must either not call it or waive the calling edge.

Findings are emitted only on call edges whose caller lives in a
result zone; the callee's own use is R1/R2's job (or exempt). An
edge waiver — a ``fastcap-lint: wall-clock(...)`` (or ``entropy`` /
``order-insensitive``) comment on the call statement — both silences
the finding and stops propagation through that edge, in any linted
zone: the waiver asserts the tainted value does not reach results.
"""

from .findings import Finding

# Internal taint kinds -> waiver tags that block an edge for them.
# clock/entropy share tags, mirroring R2's interchangeable pair.
_EDGE_TAGS = {
    "entropy": frozenset(("entropy", "wall-clock")),
    "wall-clock": frozenset(("entropy", "wall-clock")),
    "order": frozenset(("order-insensitive",)),
}
_FINDING_TAG = {
    "entropy": "entropy",
    "wall-clock": "wall-clock",
    "order": "order-insensitive",
}
_KIND_NOUN = {
    "entropy": "an entropy",
    "wall-clock": "a wall-clock",
    "order": "an unordered-iteration",
}
# Report the most result-corrupting kind first when several flow
# through one call.
_KIND_PRIORITY = ("wall-clock", "entropy", "order")


def _edge_waived(call, caller, kind, waiver_map, zone_map, mark):
    zone = zone_map.get(caller.relpath)
    if zone not in ("result", "src", "util", "telemetry"):
        return False
    ws = waiver_map.get(caller.relpath)
    if ws is None:
        return False
    if mark:
        return ws.waive(call.span, _EDGE_TAGS[kind])
    return ws.find(call.span, _EDGE_TAGS[kind]) is not None


def run(index, waiver_map, zone_map):
    """R6 findings. ``waiver_map``/``zone_map``: relpath -> WaiverSet
    / zone, for every analyzed file."""
    # Seed: functions with active source facts.
    taint = {}  # FunctionDef -> {kind: witness}
    work = []
    for fn in index.functions:
        for fact in fn.facts:
            if not fact.active:
                continue
            kind = "order" if fact.kind == "order" else fact.kind
            if kind not in taint.setdefault(fn, {}):
                taint[fn][kind] = ("fact", fact)
                work.append((fn, kind))

    # Reverse call graph: callee -> [(caller, call site)].
    callers = {}
    resolved = {}  # id(call) -> targets (reused in the report pass)
    for fn in index.functions:
        for call in fn.calls:
            targets = index.resolve_call(call, fn)
            resolved[id(call)] = targets
            for tgt in targets:
                callers.setdefault(tgt, []).append((fn, call))

    # Fixpoint: propagate kinds caller-ward through unwaived edges.
    while work:
        fn, kind = work.pop()
        for caller, call in callers.get(fn, ()):
            if kind in taint.get(caller, {}):
                continue
            if _edge_waived(call, caller, kind, waiver_map, zone_map,
                           mark=True):
                continue
            taint.setdefault(caller, {})[kind] = ("call", call, fn)
            work.append((caller, kind))

    # Report: result-zone callers whose call reaches taint.
    findings = []
    seen = set()
    for fn in index.functions:
        if zone_map.get(fn.relpath) != "result":
            continue
        for call in fn.calls:
            kinds = {}
            for tgt in resolved.get(id(call), ()):
                for kind in taint.get(tgt, {}):
                    kinds.setdefault(kind, tgt)
            for kind in _KIND_PRIORITY:
                if kind not in kinds:
                    continue
                tgt = kinds[kind]
                if _edge_waived(call, fn, kind, waiver_map, zone_map,
                               mark=True):
                    continue
                key = (fn.relpath, call.line, tgt.qname, kind)
                if key in seen:
                    break
                seen.add(key)
                findings.append(Finding(
                    fn.relpath, call.line, call.col, "R6",
                    _message(call, tgt, kind, taint), call.span,
                    tag=_FINDING_TAG[kind]))
                break  # one finding per call site
    return findings


def _message(call, target, kind, taint):
    owner = target            # function whose body holds the fact
    chain = [target.qname]
    witness = taint[target][kind]
    while witness[0] == "call" and len(chain) < 8:
        owner = witness[2]
        chain.append(owner.qname)
        witness = taint[owner][kind]
    if witness[0] == "fact":
        fact = witness[1]
        src = "%s (%s:%d)" % (fact.detail, owner.relpath, fact.line)
    else:
        src = "a deeper source (chain display capped)"
    return ("call to '%s' reaches %s source: %s uses %s" %
            (call.name, _KIND_NOUN[kind], " -> ".join(chain), src))
