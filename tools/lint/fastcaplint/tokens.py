"""C++ token stream for the FastCap determinism lint.

A real tokenizer, not a grep: comments, string/char literals (with
encoding prefixes), raw strings, C++14 digit separators, preprocessor
continuations. Comments and literals produce no code tokens, so a
banned spelling inside a string or a comment can never fire a rule.

The module also hosts the mtime-keyed token cache: every analysis
pass (per-file rules, symbol index, self-test harness) pulls token
streams through ``TokenCache`` so a file is tokenized at most once
per process, and — when a persistent cache directory is configured —
at most once per *edit* across processes (the ctest ``lint_tree`` and
``lint_corpus`` entries share one directory).
"""

import os
import pickle
import re

CACHE_FORMAT = 3  # bump when Token/Comment/tokenize output changes


class Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind, text, line, col):
        self.kind = kind  # 'id' | 'num' | 'punct' | 'pp'
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self):
        return "%s(%r)@%d:%d" % (self.kind, self.text, self.line,
                                 self.col)


class Comment:
    __slots__ = ("text", "start_line", "end_line", "code_before")

    def __init__(self, text, start_line, end_line, code_before):
        self.text = text
        self.start_line = start_line
        self.end_line = end_line
        # True when a code token precedes the comment on start_line.
        self.code_before = code_before


ID_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
ID_CONT = ID_START | frozenset("0123456789")
PUNCT3 = ("<<=", ">>=", "...", "->*")
PUNCT2 = ("::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
          "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--")


def tokenize(text):
    """Token, comment, and preprocessor-line streams for one file.

    Comments, string literals and char literals produce no code
    tokens. Preprocessor directives produce one 'pp' token carrying
    the full (continuation-joined) directive text.
    """
    tokens = []
    comments = []
    n = len(text)
    i = 0
    line = 1
    col = 1
    line_has_code = {}  # line -> True once a code token starts there

    def advance(k):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = text[i]
        # Whitespace
        if c in " \t\r\n\f\v":
            advance(1)
            continue
        # Line comment (respecting backslash continuation)
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            start_line, had_code = line, line_has_code.get(line, False)
            buf = []
            while i < n:
                if text[i] == "\n":
                    if buf and buf[-1] == "\\":
                        buf.pop()
                        advance(1)
                        continue
                    break
                buf.append(text[i])
                advance(1)
            comments.append(Comment("".join(buf[2:]), start_line, line,
                                    had_code))
            continue
        # Block comment
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            start_line, had_code = line, line_has_code.get(line, False)
            advance(2)
            buf = []
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                buf.append(text[i])
                advance(1)
            advance(2)
            comments.append(Comment("".join(buf), start_line, line,
                                    had_code))
            continue
        # Preprocessor directive (only at start of a logical line)
        if c == "#" and not line_has_code.get(line, False):
            start_line, start_col = line, col
            buf = []
            while i < n:
                if text[i] == "\n":
                    if buf and buf[-1] == "\\":
                        buf.pop()
                        advance(1)
                        continue
                    break
                # Comments inside directives end or skip them.
                if (text[i] == "/" and i + 1 < n and
                        text[i + 1] in "/*"):
                    break
                buf.append(text[i])
                advance(1)
            tokens.append(Token("pp", "".join(buf), start_line,
                                start_col))
            line_has_code[start_line] = True
            continue
        # Raw string literal
        m = None
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:i + 24])
        if m:
            delim = ")" + m.group(1) + '"'
            end = text.find(delim, i + m.end())
            end = n if end == -1 else end + len(delim)
            line_has_code[line] = True
            advance(end - i)
            continue
        # String / char literal (with encoding prefixes)
        if c in "\"'" or (c in "uUL" and _literal_ahead(text, i, n)):
            # Skip any prefix (u8, u, U, L) to the quote.
            j = i
            while j < n and text[j] not in "\"'":
                j += 1
            quote = text[j]
            # C++14 digit separator: 1'000'000 — an apostrophe
            # sandwiched between alnums is not a char literal.
            if (quote == "'" and j > 0 and
                    (text[j - 1] in ID_CONT) and j + 1 < n and
                    text[j + 1] in ID_CONT and j == i):
                # handled by the number/identifier scanners; fall out
                pass
            else:
                line_has_code[line] = True
                advance(j - i + 1)
                while i < n and text[i] != quote:
                    advance(2 if text[i] == "\\" else 1)
                advance(1)
                continue
        # Identifier / keyword
        if c in ID_START:
            start_line, start_col = line, col
            j = i
            while j < n and text[j] in ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], start_line,
                                start_col))
            line_has_code[start_line] = True
            advance(j - i)
            continue
        # Number (incl. digit separators, suffixes, hex floats)
        if c.isdigit() or (c == "." and i + 1 < n and
                           text[i + 1].isdigit()):
            start_line, start_col = line, col
            j = i
            while j < n:
                ch = text[j]
                if ch in ID_CONT or ch == ".":
                    j += 1
                elif ch == "'" and j + 1 < n and text[j + 1] in ID_CONT:
                    j += 1  # digit separator
                elif ch in "+-" and text[j - 1] in "eEpP":
                    j += 1  # exponent sign
                else:
                    break
            tokens.append(Token("num", text[i:j], start_line,
                                start_col))
            line_has_code[start_line] = True
            advance(j - i)
            continue
        # Punctuation
        for group in (PUNCT3, PUNCT2):
            tok = text[i:i + len(group[0])]
            if tok in group:
                tokens.append(Token("punct", tok, line, col))
                line_has_code[line] = True
                advance(len(tok))
                break
        else:
            tokens.append(Token("punct", c, line, col))
            line_has_code[line] = True
            advance(1)
        continue
    return tokens, comments


def _literal_ahead(text, i, n):
    """True when text[i:] starts an encoding-prefixed literal."""
    for pfx in ("u8", "u", "U", "L"):
        if text.startswith(pfx, i) and i + len(pfx) < n and \
                text[i + len(pfx)] in "\"'":
            # Not part of a longer identifier: `Label'` etc.
            if i > 0 and text[i - 1] in ID_CONT:
                return False
            return True
    return False


class TokenCache:
    """Per-file token streams, keyed by (path, mtime_ns, size).

    In-memory always; optionally persisted to ``cache_dir`` so
    separate invocations (the tree pass and the self-test pass of the
    lint ctest tier share one directory) skip re-tokenizing files
    that have not changed. A stale or unreadable cache entry is
    silently re-tokenized — the cache can never change results, only
    skip work.
    """

    def __init__(self, cache_dir=None):
        self._mem = {}
        self._dir = cache_dir
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def _stat_key(self, path):
        try:
            st = os.stat(path)
        except OSError:
            return None
        return (os.path.abspath(path), st.st_mtime_ns, st.st_size)

    def _disk_path(self, key):
        import hashlib
        h = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:24]
        return os.path.join(self._dir, "tok-%s.pickle" % h)

    def load(self, path, text=None):
        """(text, tokens, comments) for ``path``.

        ``text`` may be supplied by callers that already read the
        file; otherwise it is read here (utf-8, errors replaced).
        """
        key = self._stat_key(path)
        if key is not None and key in self._mem:
            return self._mem[key]
        if key is not None and self._dir:
            try:
                with open(self._disk_path(key), "rb") as f:
                    fmt, cached_key, entry = pickle.load(f)
                if fmt == CACHE_FORMAT and cached_key == key:
                    text, raw_tokens, raw_comments = entry
                    tokens = [Token(*t) for t in raw_tokens]
                    comments = [Comment(*c) for c in raw_comments]
                    out = (text, tokens, comments)
                    self._mem[key] = out
                    return out
            except (OSError, pickle.PickleError, ValueError, EOFError):
                pass
        if text is None:
            with open(path, "r", encoding="utf-8",
                      errors="replace") as f:
                text = f.read()
        tokens, comments = tokenize(text)
        out = (text, tokens, comments)
        if key is not None:
            self._mem[key] = out
            if self._dir:
                raw = (text,
                       [(t.kind, t.text, t.line, t.col)
                        for t in tokens],
                       [(c.text, c.start_line, c.end_line,
                         c.code_before) for c in comments])
                tmp = self._disk_path(key) + ".%d.tmp" % os.getpid()
                try:
                    with open(tmp, "wb") as f:
                        pickle.dump((CACHE_FORMAT, key, raw), f,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                    os.replace(tmp, self._disk_path(key))
                except OSError:
                    try:
                        os.remove(tmp)
                    except OSError:
                        pass
        return out
