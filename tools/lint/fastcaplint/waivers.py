"""Waiver parsing and bookkeeping.

Syntax, on the offending line, anywhere inside the offending
statement, or on an immediately preceding comment-only line:

    // fastcap-lint: <tag>(<reason>)
    // fastcap-lint: order-insensitive(keyed dedupe, never iterated)

Multiple waivers may be comma-separated after one `fastcap-lint:`.
The reason is mandatory; malformed waivers are W0 findings.

Every valid entry tracks whether it suppressed at least one finding
(of any rule — per-file R1–R5, cross-file R6/R7). An entry that
suppressed nothing is itself a finding (W1): the waiver list cannot
rot as code moves. A trailing ``EXPECT: ...`` marker (the self-test
corpus annotation) is not part of the waiver body.
"""

import re

from .findings import Finding, WAIVER_TAGS, WAIVER_TAGS_BY_RULE

# The waiver body ends at an EXPECT: marker so corpus snippets can
# annotate the waiver's own line with the W1 it must produce.
WAIVER_RE = re.compile(
    r"fastcap-lint\s*:\s*(?!zone)((?:(?!EXPECT:).)*)", re.DOTALL)
WAIVER_ITEM_RE = re.compile(r"\s*([a-z][a-z0-9-]*)\s*\(([^()]*)\)\s*")
ZONE_PRAGMA_RE = re.compile(r"fastcap-lint-zone\s*:\s*(\S+)")


class WaiverEntry:
    __slots__ = ("path", "comment_line", "target_line", "tag",
                 "reason", "used")

    def __init__(self, path, comment_line, target_line, tag, reason):
        self.path = path
        self.comment_line = comment_line  # where the waiver is written
        self.target_line = target_line    # line whose findings it waives
        self.tag = tag
        self.reason = reason
        self.used = False


class WaiverSet:
    """All valid waiver entries of one file, indexed by target line."""

    def __init__(self):
        self.entries = []
        self._by_line = {}

    def add(self, entry):
        self.entries.append(entry)
        self._by_line.setdefault(entry.target_line, []).append(entry)

    def find(self, lines, tags):
        """First entry on any of ``lines`` with a tag in ``tags``.

        Does not mark the entry used — callers that suppress a
        finding use :meth:`waive` instead.
        """
        for ln in sorted(lines):
            for entry in self._by_line.get(ln, ()):
                if entry.tag in tags:
                    return entry
        return None

    def waive(self, lines, tags):
        """Suppressing lookup: marks the matching entry used."""
        entry = self.find(lines, tags)
        if entry is not None:
            entry.used = True
        return entry is not None

    def stale(self):
        return [e for e in self.entries if not e.used]


def tags_for_finding(finding):
    """The waiver tags that may silence ``finding``."""
    if finding.rule == "R2":
        return frozenset(("entropy", "wall-clock"))
    if finding.rule == "R6":
        # The edge waiver must match the taint kind it suppresses;
        # the two R2-style tags stay interchangeable for clock and
        # entropy taint, mirroring R2 itself.
        if finding.tag == "order-insensitive":
            return frozenset(("order-insensitive",))
        return frozenset(("entropy", "wall-clock"))
    tag = finding.tag or WAIVER_TAGS_BY_RULE.get(finding.rule)
    if tag is None:
        return frozenset()
    return frozenset((tag,))


def collect_waivers(comments, tokens, findings, path):
    """Parse all waiver comments into a WaiverSet; malformed -> W0.

    A waiver on a line with preceding code waives that line (and, via
    the statement span, the statement it sits in). A waiver on a
    comment-only line waives the next line bearing code.
    """
    code_lines = sorted({t.line for t in tokens})
    ws = WaiverSet()
    for c in comments:
        m = WAIVER_RE.search(c.text)
        if not m:
            continue
        body = m.group(1).strip()
        pos = 0
        entries = []
        ok = bool(body)
        while pos < len(body):
            im = WAIVER_ITEM_RE.match(body, pos)
            if not im:
                ok = False
                break
            tag, reason = im.group(1), im.group(2).strip()
            if tag not in WAIVER_TAGS:
                findings.append(Finding(
                    path, c.start_line, 1, "W0",
                    "unknown waiver tag '%s' (known: %s)" %
                    (tag, ", ".join(sorted(WAIVER_TAGS)))))
            elif not reason:
                findings.append(Finding(
                    path, c.start_line, 1, "W0",
                    "waiver '%s' needs a reason: %s(why it is safe)" %
                    (tag, tag)))
            else:
                entries.append((tag, reason))
            pos = im.end()
            if pos < len(body):
                if body[pos] == ",":
                    pos += 1
                else:
                    ok = False
                    break
        if not ok:
            findings.append(Finding(
                path, c.start_line, 1, "W0",
                "malformed waiver; expected "
                "'fastcap-lint: tag(reason)[, tag(reason)...]'"))
        if not entries:
            continue
        if c.code_before:
            target = c.start_line
        else:
            target = next((ln for ln in code_lines
                           if ln > c.end_line), None)
            if target is None:
                continue
        for tag, reason in entries:
            ws.add(WaiverEntry(path, c.start_line, target, tag,
                               reason))
    return ws


def is_waived(finding, waiver_set):
    """Suppress check for per-file findings; marks entries used."""
    tags = tags_for_finding(finding)
    if not tags:
        return False
    return waiver_set.waive(finding.span, tags)


def stale_waiver_findings(waiver_set):
    out = []
    for e in waiver_set.stale():
        out.append(Finding(
            e.path, e.comment_line, 1, "W1",
            "stale waiver '%s(%s)': it suppresses no finding; "
            "delete it (or move it back onto the code it covered)" %
            (e.tag, e.reason)))
    return out
